package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"erminer/internal/measure"
	"erminer/internal/relation"
	"erminer/internal/repair"
	"erminer/internal/rulesio"
)

func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathRepair, s.handleRepair)
	mux.HandleFunc("POST "+PathValidate, s.handleValidate)
	mux.HandleFunc("GET "+PathRules, s.handleRulesGet)
	mux.HandleFunc("PUT "+PathRules, s.handleRulesPut)
	mux.HandleFunc("POST "+PathRulesStage, s.handleRulesStage)
	mux.HandleFunc("POST "+PathRulesActivate, s.handleRulesActivate)
	mux.HandleFunc("PATCH "+PathData, s.handleDataPatch)
	mux.HandleFunc("POST "+PathJobs, s.handleJobsPost)
	mux.HandleFunc("GET "+PathJobs, s.handleJobsList)
	mux.HandleFunc("GET "+PathJobByID, s.handleJobsGet)
	mux.HandleFunc("GET "+PathHealthz, s.handleHealthz)
	mux.HandleFunc("GET "+PathMetrics, s.handleMetrics)
	s.mux = mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	//ermvet:ignore errdrop a failed response write means the client is gone; there is no one to tell
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	//ermvet:ignore errdrop a failed response write means the client is gone; there is no one to tell
	json.NewEncoder(w).Encode(v)
}

// decodeJSON strictly decodes the request body into v (unknown fields
// and trailing garbage are errors, and the body is size-capped).
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.maxBody()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// TupleBatch is the common request shape of /v1/repair and /v1/validate:
// a batch of tuples as column-name → value maps. Absent columns are
// treated as missing (Null). It is exported (with the response types
// below) so the ermcluster coordinator speaks exactly this wire shape
// when fanning out sub-batches — byte-identical merged responses
// require one definition, not a parallel copy that can drift.
//
//ermvet:wire
type TupleBatch struct {
	Tuples []map[string]string `json:"tuples"`
	// OnlyMissing restricts repair to Null cells (imputation mode).
	OnlyMissing bool `json:"only_missing,omitempty"`
	// Explain adds each contributing rule's full candidate histogram to
	// every fix (the rule list itself is always included).
	Explain bool `json:"explain,omitempty"`
}

// encodeBatch builds a private relation over the serving input schema
// from the posted tuples, sharing the serving dictionary pool so codes
// align with the master data. It write-locks the dictionaries: unseen
// values are interned.
func (s *Server) encodeBatch(tuples []map[string]string) (*relation.Relation, error) {
	for i, t := range tuples {
		if t == nil {
			tuples[i] = map[string]string{}
		}
	}
	s.dictMu.Lock()
	defer s.dictMu.Unlock()
	schema := s.p.Input.Schema()
	rel := relation.New(schema, s.p.Input.Pool())
	vals := make([]string, schema.Len())
	for i, t := range tuples {
		for j := range vals {
			vals[j] = ""
		}
		for col, v := range t {
			idx := schema.Index(col)
			if idx < 0 {
				return nil, fmt.Errorf("tuple %d: unknown column %q", i, col)
			}
			vals[idx] = v
		}
		rel.AppendRow(vals)
	}
	return rel, nil
}

// runRules evaluates the active rule set over the posted batch on the
// shared index cache, honouring the request deadline. The returned
// evaluator has already had its stats folded into the server metrics.
func (s *Server) runRules(ctx context.Context, rel *relation.Relation, rs *ruleSet) (*measure.Evaluator, repair.Result, error) {
	//ermvet:ignore guardedby evaluation reads immutable master codes and the thread-safe IndexCache only; dictionaries are untouched (decision 12)
	p := s.p
	ev := measure.NewSharedEvaluator(rel, p.Master, nil, p.IndexCache)
	ev.Parallelism = p.Workers()
	ev.Scalar = p.ScalarEval
	res, err := repair.ApplyContext(ctx, ev, rs.list)
	s.metrics.indexBuilds.Add(int64(ev.Stats.IndexBuilds))
	return ev, res, err
}

// FixJSON is one repaired cell with its justification.
type FixJSON struct {
	Row   int     `json:"row"`
	Attr  string  `json:"attr"`
	Old   string  `json:"old"`
	New   string  `json:"new"`
	Score float64 `json:"score"`
	// Rules lists the covering rules that contributed candidates.
	Rules []string `json:"rules,omitempty"`
	// Evidence carries each rule's candidate histogram (explain=true).
	Evidence []EvidenceJSON `json:"evidence,omitempty"`
}

type EvidenceJSON struct {
	Rule       string          `json:"rule"`
	Candidates []CandidateJSON `json:"candidates"`
}

type CandidateJSON struct {
	Value string  `json:"value"`
	Count int     `json:"count"`
	Score float64 `json:"score"`
}

// TupleBatchVersion numbers the shared /v1/repair / /v1/validate
// request shape.
const TupleBatchVersion = 1

// RepairResponse is the /v1/repair response body, merged sub-batch by
// sub-batch on the coordinator.
//
//ermvet:wire
type RepairResponse struct {
	Tuples       []map[string]string `json:"tuples"`
	Fixes        []FixJSON           `json:"fixes"`
	Covered      int                 `json:"covered"`
	Changed      int                 `json:"changed"`
	RulesVersion int64               `json:"rules_version"`
}

// RepairResponseVersion numbers the /v1/repair response shape.
const RepairResponseVersion = 1

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.inFlightRepair.Add(1)
	defer s.metrics.inFlightRepair.Add(-1)
	// Every outcome lands in the latency window — 4xx, queue rejections
	// and timeouts included — so the p50/p99 lines describe what clients
	// actually experience, not just the successes.
	defer func() { s.metrics.observeLatency(time.Since(start)) }()
	var req TupleBatch
	if err := s.decodeJSON(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Tuples) == 0 {
		httpError(w, http.StatusBadRequest, "empty tuple batch")
		return
	}
	if len(req.Tuples) > s.cfg.maxBatch() {
		httpError(w, http.StatusBadRequest, "batch of %d tuples exceeds the %d limit", len(req.Tuples), s.cfg.maxBatch())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.requestTimeout())
	defer cancel()

	release, status, err := s.acquire(ctx.Done())
	if err != nil {
		httpError(w, status, "%v", err)
		return
	}
	defer release()
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)
	if s.holdRepair != nil {
		s.holdRepair()
	}
	s.metrics.tuplesSeen.Add(int64(len(req.Tuples)))

	rs := s.rules()
	rel, err := s.encodeBatch(req.Tuples)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ev, res, err := s.runRules(ctx, rel, rs)
	if err != nil {
		s.metrics.timeoutsTotal.Add(1)
		httpError(w, http.StatusGatewayTimeout, "repair timed out: %v", err)
		return
	}

	// The read lock spans from the first s.p read through the dictionary
	// lookups below: a concurrent encodeBatch grows the shared pool, so
	// reading the problem outside the lock would race it.
	s.dictMu.RLock()
	y := s.p.Y
	yName := s.p.Input.Schema().Attr(y).Name
	oldCodes := make([]int32, rel.NumRows())
	for row := range oldCodes {
		oldCodes[row] = rel.Code(row, y)
	}
	changed := repair.WriteFixes(rel, y, res, req.OnlyMissing)

	resp := RepairResponse{
		Tuples:       req.Tuples,
		Fixes:        []FixJSON{},
		Covered:      res.Covered,
		Changed:      changed,
		RulesVersion: rs.version,
	}
	for row := 0; row < rel.NumRows(); row++ {
		if res.Pred[row] == relation.Null || rel.Code(row, y) == oldCodes[row] {
			continue
		}
		fix := FixJSON{
			Row:   row,
			Attr:  yName,
			Old:   rel.Dict(y).Value(oldCodes[row]),
			New:   rel.Dict(y).Value(res.Pred[row]),
			Score: res.Score[row],
		}
		exp := repair.Explain(ev, rs.list, row)
		for _, evd := range exp.Evidence {
			ruleStr := evd.Rule.String(rel, s.p.Master.Schema())
			fix.Rules = append(fix.Rules, ruleStr)
			if req.Explain {
				ej := EvidenceJSON{Rule: ruleStr}
				for _, c := range evd.Candidates {
					ej.Candidates = append(ej.Candidates, CandidateJSON{
						Value: rel.Dict(y).Value(c.Value),
						Count: c.Count,
						Score: c.Score,
					})
				}
				fix.Evidence = append(fix.Evidence, ej)
			}
		}
		resp.Tuples[row][yName] = fix.New
		resp.Fixes = append(resp.Fixes, fix)
	}
	s.dictMu.RUnlock()
	s.metrics.repairsApplied.Add(int64(changed))
	writeJSON(w, http.StatusOK, resp)
}

type ValidationJSON struct {
	Row      int     `json:"row"`
	Status   string  `json:"status"` // consistent, violation, missing, uncovered
	Attr     string  `json:"attr"`
	Got      string  `json:"got,omitempty"`
	Expected string  `json:"expected,omitempty"`
	Score    float64 `json:"score,omitempty"`
}

// ValidateResponse is the /v1/validate response body, merged sub-batch
// by sub-batch on the coordinator.
//
//ermvet:wire
type ValidateResponse struct {
	Results      []ValidationJSON `json:"results"`
	Violations   int              `json:"violations"`
	Missing      int              `json:"missing"`
	Uncovered    int              `json:"uncovered"`
	RulesVersion int64            `json:"rules_version"`
}

// ValidateResponseVersion numbers the /v1/validate response shape.
const ValidateResponseVersion = 1

func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.inFlightValidate.Add(1)
	defer s.metrics.inFlightValidate.Add(-1)
	// As in handleRepair: every outcome is observed, not just 200s.
	defer func() { s.metrics.observeLatency(time.Since(start)) }()
	var req TupleBatch
	if err := s.decodeJSON(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Tuples) == 0 {
		httpError(w, http.StatusBadRequest, "empty tuple batch")
		return
	}
	if len(req.Tuples) > s.cfg.maxBatch() {
		httpError(w, http.StatusBadRequest, "batch of %d tuples exceeds the %d limit", len(req.Tuples), s.cfg.maxBatch())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.requestTimeout())
	defer cancel()

	release, status, err := s.acquire(ctx.Done())
	if err != nil {
		httpError(w, status, "%v", err)
		return
	}
	defer release()
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)
	s.metrics.tuplesSeen.Add(int64(len(req.Tuples)))

	rs := s.rules()
	rel, err := s.encodeBatch(req.Tuples)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	_, res, err := s.runRules(ctx, rel, rs)
	if err != nil {
		s.metrics.timeoutsTotal.Add(1)
		httpError(w, http.StatusGatewayTimeout, "validation timed out: %v", err)
		return
	}

	// As in handleRepair: s.p and the dictionaries must be read under
	// the same lock that encodeBatch writes them under.
	s.dictMu.RLock()
	y := s.p.Y
	yName := s.p.Input.Schema().Attr(y).Name
	resp := ValidateResponse{Results: make([]ValidationJSON, rel.NumRows()), RulesVersion: rs.version}
	for row := 0; row < rel.NumRows(); row++ {
		v := ValidationJSON{Row: row, Attr: yName, Got: rel.Value(row, y)}
		switch cur := rel.Code(row, y); {
		case res.Pred[row] == relation.Null:
			v.Status = "uncovered"
			resp.Uncovered++
		case cur == relation.Null:
			v.Status = "missing"
			v.Expected = rel.Dict(y).Value(res.Pred[row])
			v.Score = res.Score[row]
			resp.Missing++
		case cur == res.Pred[row]:
			v.Status = "consistent"
		default:
			v.Status = "violation"
			v.Expected = rel.Dict(y).Value(res.Pred[row])
			v.Score = res.Score[row]
			resp.Violations++
		}
		resp.Results[row] = v
	}
	s.dictMu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

// handleRulesGet serves the active rule set in the portable wire format
// (the same JSON -export-rules writes and -import-rules reads), with
// the generation counter in the X-Rules-Version header and the
// generation's content hash as a strong ETag — the id an ermcluster
// coordinator compares across workers to spot replication skew.
func (s *Server) handleRulesGet(w http.ResponseWriter, r *http.Request) {
	rs := s.rules()
	s.dictMu.RLock()
	data, err := rulesio.Export(s.p, rs.rules)
	s.dictMu.RUnlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "exporting rules: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Rules-Version", fmt.Sprint(rs.version))
	w.Header().Set("ETag", `"`+rs.etag+`"`)
	//ermvet:ignore errdrop a failed response write means the client is gone; there is no one to tell
	w.Write(data)
}

// RulesAck is the response body of PUT /v1/rules and of
// POST /v1/rules/activate: the generation the rules landed as. The
// coordinator relays it verbatim to its own caller.
//
//ermvet:wire
type RulesAck struct {
	Version int64  `json:"version"`
	Count   int    `json:"count"`
	ETag    string `json:"etag"`
}

// RulesAckVersion numbers the rule-swap acknowledgement shape.
const RulesAckVersion = 1

func (s *Server) handleRulesPut(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxBody()))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	version, count, err := s.SwapRules(data)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, RulesAck{Version: version, Count: count, ETag: s.rules().etag})
}

// handleRulesStage is phase one of the cluster's two-phase rule push:
// import and park a generation without activating it, answering its
// content hash. The coordinator stages on every worker, verifies the
// returned etags agree, and only then tells anyone to activate.
func (s *Server) handleRulesStage(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxBody()))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	etag, count, err := s.StageRules(data)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, StageResponse{ETag: etag, Count: count})
}

// StageResponse is the response body of POST /v1/rules/stage: the
// content hash the staged generation can later be activated by.
//
//ermvet:wire
type StageResponse struct {
	ETag  string `json:"etag"`
	Count int    `json:"count"`
}

// StageResponseVersion numbers the staging response shape.
const StageResponseVersion = 1

// ActivateRequest is the request body of POST /v1/rules/activate,
// naming the staged generation to swap in by its content hash.
//
//ermvet:wire
type ActivateRequest struct {
	ETag string `json:"etag"`
}

// ActivateRequestVersion numbers the activation request shape.
const ActivateRequestVersion = 1

// handleRulesActivate is phase two: atomically swap in the staged
// generation named by the request's etag.
func (s *Server) handleRulesActivate(w http.ResponseWriter, r *http.Request) {
	var req ActivateRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	version, count, err := s.ActivateStaged(req.ETag)
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, RulesAck{Version: version, Count: count, ETag: req.ETag})
}

func (s *Server) handleJobsPost(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := s.decodeJSON(w, r, &spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if _, err := newMiner(spec); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, err := s.jobs.submit(spec)
	switch {
	case errors.Is(err, errJobQueueFull):
		s.metrics.rejectedTotal.Add(1)
		httpError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, errShuttingDown):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

func (s *Server) handleJobsList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.list()})
}

func (s *Server) handleJobsGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// HealthResponse is the worker's /healthz body. The coordinator's
// registry decodes it to track per-worker liveness and rules-generation
// skew, so it is a pinned wire shape like the batch responses.
//
//ermvet:wire
type HealthResponse struct {
	Status        string `json:"status"`
	Role          string `json:"role,omitempty"`
	RulesActive   int    `json:"rules_active"`
	RulesVersion  int64  `json:"rules_version"`
	RulesETag     string `json:"rules_etag"`
	JobsQueued    int    `json:"jobs_queued"`
	JobsRunning   int    `json:"jobs_running"`
	UptimeSeconds int64  `json:"uptime_seconds"`
}

// HealthResponseVersion numbers the worker health-probe shape.
const HealthResponseVersion = 1

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rs := s.rules()
	queued, running := s.jobs.depths()
	status := "ok"
	code := http.StatusOK
	if s.closed.Load() {
		status = "shutting_down"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, HealthResponse{
		Status:        status,
		Role:          s.cfg.Role,
		RulesActive:   len(rs.rules),
		RulesVersion:  rs.version,
		RulesETag:     rs.etag,
		JobsQueued:    queued,
		JobsRunning:   running,
		UptimeSeconds: int64(time.Since(s.metrics.start).Seconds()),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rs := s.rules()
	queued, running := s.jobs.depths()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.metrics.write(w, len(rs.rules), rs.version, queued, running)
}
