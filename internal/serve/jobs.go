package serve

import (
	"fmt"
	"sync"
	"time"
)

// JobSpec is the client-supplied description of one asynchronous mining
// job (POST /v1/jobs).
type JobSpec struct {
	// Method selects the miner: enuminer, enuminerh3, rlminer or ctane.
	Method string `json:"method"`
	// K is the rule budget; zero means the serving problem's budget.
	K int `json:"k,omitempty"`
	// Eta is the support threshold; zero means the serving problem's η_s.
	Eta int `json:"eta,omitempty"`
	// Steps is the RLMiner training budget; zero means the default.
	Steps int `json:"steps,omitempty"`
	// Seed drives the miner's randomness.
	Seed int64 `json:"seed,omitempty"`
	// Activate hot-swaps the serving rule set when the job succeeds.
	Activate bool `json:"activate,omitempty"`
}

// Job states: queued → running → done | failed; queued jobs still
// waiting when the daemon shuts down become cancelled.
const (
	JobQueued    = "queued"
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// JobStatus is the externally visible snapshot of one job
// (GET /v1/jobs/{id}).
type JobStatus struct {
	ID         string  `json:"id"`
	Spec       JobSpec `json:"spec"`
	State      string  `json:"state"`
	Error      string  `json:"error,omitempty"`
	Rules      int     `json:"rules,omitempty"`
	Explored   int     `json:"explored,omitempty"`
	DurationMS int64   `json:"duration_ms,omitempty"`
	// Step and TotalSteps report training progress for rlminer jobs
	// (zero for other methods).
	Step       int `json:"step,omitempty"`
	TotalSteps int `json:"total_steps,omitempty"`
	// Resumed marks a job recovered from an on-disk checkpoint after a
	// daemon restart.
	Resumed bool `json:"resumed,omitempty"`
	// ActivatedVersion is the rule-set version this job installed, when
	// Spec.Activate was set and the job succeeded.
	ActivatedVersion int64 `json:"activated_version,omitempty"`
}

// job is the manager's internal record. id, spec, ckBase and resumed
// are immutable after submit; mu guards every mutable field, and
// snapshots copy under the lock.
type job struct {
	mu        sync.Mutex
	id        string
	spec      JobSpec
	ckBase    string    // base name of the job's checkpoint/manifest files
	resumed   bool      // recovered from a checkpoint at daemon startup
	state     string    // guarded by mu
	err       string    // guarded by mu
	rules     int       // guarded by mu
	explored  int       // guarded by mu
	step      int       // guarded by mu; rlminer training progress
	total     int       // guarded by mu; rlminer training budget
	started   time.Time // guarded by mu
	finished  time.Time // guarded by mu
	activated int64     // guarded by mu
	rulesJSON []byte    // guarded by mu; wire-format export of the mined rules
}

func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:               j.id,
		Spec:             j.spec,
		State:            j.state,
		Error:            j.err,
		Rules:            j.rules,
		Explored:         j.explored,
		Step:             j.step,
		TotalSteps:       j.total,
		Resumed:          j.resumed,
		ActivatedVersion: j.activated,
	}
	if !j.started.IsZero() {
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		st.DurationMS = end.Sub(j.started).Milliseconds()
	}
	return st
}

func (j *job) setRunning() {
	j.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()
}

func (j *job) setDone(rules, explored int, rulesJSON []byte, activated int64) {
	j.mu.Lock()
	j.state = JobDone
	j.rules = rules
	j.explored = explored
	j.rulesJSON = rulesJSON
	j.activated = activated
	j.finished = time.Now()
	j.mu.Unlock()
}

func (j *job) setFailed(err error) {
	j.mu.Lock()
	j.state = JobFailed
	j.err = err.Error()
	j.finished = time.Now()
	j.mu.Unlock()
}

func (j *job) setCancelled() {
	j.mu.Lock()
	j.state = JobCancelled
	j.finished = time.Now()
	j.mu.Unlock()
}

// setProgress records rlminer training progress; it has the
// rlminer.Config.Progress signature.
func (j *job) setProgress(step, total int) {
	j.mu.Lock()
	j.step = step
	j.total = total
	j.mu.Unlock()
}

// jobManager runs mining jobs on a bounded worker pool with a bounded
// submission queue. Submissions beyond the queue capacity are rejected
// (the HTTP layer maps that to 429), and shutdown drains: running jobs
// finish, still-queued jobs are cancelled.
type jobManager struct {
	mu     sync.Mutex
	jobs   map[string]*job // guarded by mu
	order  []string        // guarded by mu; insertion order for listing
	queue  chan *job
	wg     sync.WaitGroup
	nextID int  // guarded by mu
	closed bool // guarded by mu

	queued  int // guarded by mu; jobs accepted but not yet started
	running int // guarded by mu
}

var errJobQueueFull = fmt.Errorf("job queue full")
var errShuttingDown = fmt.Errorf("server shutting down")

func newJobManager(workers, depth int, run func(*job)) *jobManager {
	m := &jobManager{
		jobs:  make(map[string]*job),
		queue: make(chan *job, depth),
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker(run)
	}
	return m
}

func (m *jobManager) worker(run func(*job)) {
	defer m.wg.Done()
	for j := range m.queue {
		m.mu.Lock()
		closed := m.closed
		m.queued--
		if !closed {
			m.running++
		}
		m.mu.Unlock()
		if closed {
			j.setCancelled()
			continue
		}
		m.runOne(run, j)
		m.mu.Lock()
		m.running--
		m.mu.Unlock()
	}
}

// runOne is the worker's last line of defence: a run function that
// panics must not kill the worker goroutine — that would shrink the
// pool until the daemon silently stops executing jobs. The panic is
// converted into a job failure and the worker keeps serving.
func (m *jobManager) runOne(run func(*job), j *job) {
	defer func() {
		if r := recover(); r != nil {
			j.setFailed(fmt.Errorf("job panicked: %v", r))
		}
	}()
	run(j)
}

// submit enqueues a job, returning errJobQueueFull or errShuttingDown
// when it cannot be accepted.
func (m *jobManager) submit(spec JobSpec) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errShuttingDown
	}
	m.nextID++
	id := fmt.Sprintf("job-%d", m.nextID)
	j := &job{id: id, spec: spec, ckBase: id, state: JobQueued}
	select {
	case m.queue <- j:
	default:
		m.nextID--
		return nil, errJobQueueFull
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.queued++
	return j, nil
}

// reserveIDs raises the ID counter past n so freshly submitted jobs
// never collide with IDs recovered from a previous process's
// checkpoints.
func (m *jobManager) reserveIDs(n int) {
	m.mu.Lock()
	if n > m.nextID {
		m.nextID = n
	}
	m.mu.Unlock()
}

// resubmit enqueues a job recovered from an on-disk checkpoint after a
// restart, keeping its original ID and checkpoint base name so a
// further crash resumes from the same files.
func (m *jobManager) resubmit(id, ckBase string, spec JobSpec) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errShuttingDown
	}
	if _, ok := m.jobs[id]; ok {
		return nil, fmt.Errorf("job %s already exists", id)
	}
	j := &job{id: id, spec: spec, ckBase: ckBase, resumed: true, state: JobQueued}
	select {
	case m.queue <- j:
	default:
		return nil, errJobQueueFull
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.queued++
	return j, nil
}

func (m *jobManager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

func (m *jobManager) list() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot()
	}
	return out
}

func (m *jobManager) depths() (queued, running int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.queued, m.running
}

// shutdown stops accepting jobs, cancels the still-queued ones and waits
// for running jobs to finish (in-flight drain). It returns early with
// the context's error if the deadline passes first; the workers keep
// draining in the background in that case.
func (m *jobManager) shutdown(done <-chan struct{}) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-done:
		return fmt.Errorf("serve: shutdown deadline passed with jobs still draining")
	}
}
