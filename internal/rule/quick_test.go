package rule

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: a rule's canonical key is invariant under permutation of the
// LHS pairs and pattern conditions passed to New.
func TestKeyPermutationInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var lhs []AttrPair
		for a := 0; a < 5; a++ {
			if rng.Intn(2) == 0 {
				lhs = append(lhs, AttrPair{Input: a, Master: rng.Intn(5)})
			}
		}
		var pat []Condition
		for a := 0; a < 5; a++ {
			if rng.Intn(3) == 0 {
				pat = append(pat, Eq(a, int32(rng.Intn(4))))
			}
		}
		r1 := New(lhs, 9, 9, pat)
		// Shuffle both lists and rebuild.
		rng.Shuffle(len(lhs), func(i, j int) { lhs[i], lhs[j] = lhs[j], lhs[i] })
		rng.Shuffle(len(pat), func(i, j int) { pat[i], pat[j] = pat[j], pat[i] })
		r2 := New(lhs, 9, 9, pat)
		return r1.Key() == r2.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: domination is transitive along refinement chains.
func TestDominationTransitiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r0 := New([]AttrPair{{0, 0}}, 9, 9, nil)
		r1 := r0
		// Two successive random refinements.
		refine := func(r *Rule) *Rule {
			for tries := 0; tries < 10; tries++ {
				if rng.Intn(2) == 0 {
					a := 1 + rng.Intn(4)
					if !r.HasLHSAttr(a) {
						return r.WithLHS(a, a)
					}
				} else {
					a := rng.Intn(5)
					if !r.HasPatternAttr(a) {
						return r.WithCondition(Eq(a, int32(rng.Intn(3))))
					}
				}
			}
			return r.WithCondition(Eq(7, 0))
		}
		r1 = refine(r0)
		r2 := refine(r1)
		// r0 < r1 and r1 < r2 must imply r0 < r2.
		if Dominates(r0, r1) && Dominates(r1, r2) && !Dominates(r0, r2) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: negated and positive conditions on the same code partition
// the non-Null values.
func TestNegationPartitionProperty(t *testing.T) {
	f := func(codesRaw []int32, probe int32) bool {
		if probe < 0 {
			probe = -probe
		}
		var codes []int32
		for _, c := range codesRaw {
			if c >= 0 {
				codes = append(codes, c)
			}
		}
		if len(codes) == 0 {
			return true
		}
		pos := NewCondition(0, codes, "")
		neg := pos
		neg.Negate = true
		// Exactly one of them matches any non-Null probe.
		return pos.Matches(probe) != neg.Matches(probe)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNotEq(t *testing.T) {
	c := NotEq(2, 5)
	if !c.Negate || c.Attr != 2 {
		t.Errorf("NotEq = %+v", c)
	}
	if c.Matches(5) {
		t.Error("negated condition matched its own code")
	}
	if !c.Matches(6) {
		t.Error("negated condition rejected another code")
	}
	if c.Matches(-1) {
		t.Error("negated condition matched Null")
	}
}

func TestNegatedKeyDistinct(t *testing.T) {
	a := New(nil, 9, 9, []Condition{Eq(0, 1)})
	b := New(nil, 9, 9, []Condition{NotEq(0, 1)})
	if a.Key() == b.Key() {
		t.Error("negated and positive conditions share a key")
	}
}

func TestNegatedDomination(t *testing.T) {
	// A negated condition only matches the identical negated condition
	// in domination checks.
	base := New([]AttrPair{{0, 0}}, 9, 9, []Condition{NotEq(1, 2)})
	same := base.WithLHS(2, 2)
	if !Dominates(base, same) {
		t.Error("negated pattern blocked legitimate domination")
	}
	flipped := New([]AttrPair{{0, 0}, {2, 2}}, 9, 9, []Condition{Eq(1, 2)})
	if Dominates(base, flipped) {
		t.Error("negated pattern dominated its positive twin")
	}
}
