package rule

import (
	"math/rand"
	"testing"
	"testing/quick"

	"erminer/internal/relation"
)

func testRelation() *relation.Relation {
	s := relation.NewSchema(
		relation.Attribute{Name: "city"},
		relation.Attribute{Name: "zip"},
		relation.Attribute{Name: "case"},
	)
	r := relation.New(s, relation.NewPool())
	r.AppendRow([]string{"HZ", "31200", "patient"})
	r.AppendRow([]string{"BJ", "10021", "imports"})
	r.AppendRow([]string{"HZ", "", "patient"})
	return r
}

func TestNewConditionNormalises(t *testing.T) {
	c := NewCondition(0, []int32{5, 1, 5, relation.Null, 3}, "")
	want := []int32{1, 3, 5}
	if len(c.Codes) != len(want) {
		t.Fatalf("Codes = %v, want %v", c.Codes, want)
	}
	for i := range want {
		if c.Codes[i] != want[i] {
			t.Fatalf("Codes = %v, want %v", c.Codes, want)
		}
	}
}

func TestConditionMatches(t *testing.T) {
	c := NewCondition(0, []int32{2, 4, 9}, "")
	for _, tc := range []struct {
		code int32
		want bool
	}{
		{2, true}, {4, true}, {9, true},
		{1, false}, {3, false}, {10, false},
		{relation.Null, false},
	} {
		if got := c.Matches(tc.code); got != tc.want {
			t.Errorf("Matches(%d) = %v, want %v", tc.code, got, tc.want)
		}
	}
}

// Property: the binary search in Matches agrees with a linear scan for
// arbitrary sorted code sets.
func TestConditionMatchesProperty(t *testing.T) {
	f := func(codes []int32, probe int32) bool {
		c := NewCondition(0, codes, "")
		linear := false
		for _, x := range c.Codes {
			if x == probe {
				linear = true
			}
		}
		return c.Matches(probe) == linear
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEqIsSingleton(t *testing.T) {
	c := Eq(3, 7)
	if c.Attr != 3 || len(c.Codes) != 1 || c.Codes[0] != 7 {
		t.Errorf("Eq = %+v", c)
	}
}

func TestSameCodes(t *testing.T) {
	a := NewCondition(1, []int32{1, 2}, "x")
	b := NewCondition(1, []int32{2, 1}, "y") // label ignored, order normalised
	if !a.SameCodes(b) {
		t.Error("equal code sets not recognised")
	}
	c := NewCondition(1, []int32{1, 3}, "")
	if a.SameCodes(c) {
		t.Error("different code sets matched")
	}
	d := NewCondition(2, []int32{1, 2}, "")
	if a.SameCodes(d) {
		t.Error("different attributes matched")
	}
}

func TestRuleNormalisationAndKey(t *testing.T) {
	r1 := New([]AttrPair{{1, 1}, {0, 0}}, 2, 2, []Condition{Eq(1, 5), Eq(0, 3)})
	r2 := New([]AttrPair{{0, 0}, {1, 1}}, 2, 2, []Condition{Eq(0, 3), Eq(1, 5)})
	if r1.Key() != r2.Key() {
		t.Errorf("keys differ for equal rules:\n%s\n%s", r1.Key(), r2.Key())
	}
	r3 := New([]AttrPair{{0, 0}}, 2, 2, nil)
	if r1.Key() == r3.Key() {
		t.Error("different rules share a key")
	}
}

func TestWithLHSAndWithConditionAreCopies(t *testing.T) {
	base := New([]AttrPair{{0, 0}}, 2, 2, nil)
	child := base.WithLHS(1, 1)
	if len(base.LHS) != 1 {
		t.Error("WithLHS mutated the receiver")
	}
	if len(child.LHS) != 2 {
		t.Errorf("child LHS = %v", child.LHS)
	}
	child2 := base.WithCondition(Eq(1, 4))
	if len(base.Pattern) != 0 {
		t.Error("WithCondition mutated the receiver")
	}
	if len(child2.Pattern) != 1 {
		t.Errorf("child2 pattern = %v", child2.Pattern)
	}
}

func TestHasAttrHelpers(t *testing.T) {
	r := New([]AttrPair{{0, 0}}, 2, 2, []Condition{Eq(1, 4)})
	if !r.HasLHSAttr(0) || r.HasLHSAttr(1) {
		t.Error("HasLHSAttr wrong")
	}
	if !r.HasPatternAttr(1) || r.HasPatternAttr(0) {
		t.Error("HasPatternAttr wrong")
	}
}

func TestMatchesPattern(t *testing.T) {
	rel := testRelation()
	hz, ok1 := rel.Dict(0).Lookup("HZ")
	zip, ok2 := rel.Dict(1).Lookup("31200")
	if !ok1 || !ok2 {
		t.Fatal("test values not interned")
	}
	r := New([]AttrPair{{0, 0}}, 2, 2, []Condition{Eq(0, hz), Eq(1, zip)})
	if !r.MatchesPattern(rel, 0) {
		t.Error("row 0 should match (HZ, 31200)")
	}
	if r.MatchesPattern(rel, 1) {
		t.Error("row 1 should not match")
	}
	// Row 2 has Null zip: Null never matches.
	if r.MatchesPattern(rel, 2) {
		t.Error("row 2 with Null zip should not match")
	}
}

func TestString(t *testing.T) {
	rel := testRelation()
	ms := relation.NewSchema(
		relation.Attribute{Name: "city_m"},
		relation.Attribute{Name: "case_m"},
	)
	hz, _ := rel.Dict(0).Lookup("HZ")
	r := New([]AttrPair{{0, 0}}, 2, 1, []Condition{Eq(0, hz)})
	got := r.String(rel, ms)
	want := "(((city,city_m)) -> (case,case_m), tp[city=HZ])"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := New([]AttrPair{{0, 0}}, 2, 2, []Condition{NewCondition(1, []int32{1, 2}, "l")})
	c := r.Clone()
	c.Pattern[0].Codes[0] = 99
	if r.Pattern[0].Codes[0] == 99 {
		t.Error("Clone shares code slices")
	}
}

func randomRule(rng *rand.Rand) *Rule {
	var lhs []AttrPair
	for a := 0; a < 4; a++ {
		if rng.Intn(2) == 0 {
			lhs = append(lhs, AttrPair{Input: a, Master: a})
		}
	}
	var pat []Condition
	for a := 0; a < 4; a++ {
		if rng.Intn(3) == 0 {
			pat = append(pat, Eq(a, int32(rng.Intn(3))))
		}
	}
	return New(lhs, 5, 5, pat)
}

// Property: a rule always dominates its refinements, and domination is
// irreflexive.
func TestDominationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		r := randomRule(rng)
		if Dominates(r, r) {
			t.Fatalf("rule dominates itself: %s", r.Key())
		}
		// Refine with a fresh LHS attribute.
		for a := 0; a < 5; a++ {
			if !r.HasLHSAttr(a) && a != 5 {
				child := r.WithLHS(a, a)
				if !Dominates(r, child) {
					t.Fatalf("parent does not dominate LHS child:\n%s\n%s", r.Key(), child.Key())
				}
				if Dominates(child, r) {
					t.Fatalf("child dominates parent")
				}
				break
			}
		}
		// Refine with a fresh pattern condition.
		for a := 0; a < 5; a++ {
			if !r.HasPatternAttr(a) {
				child := r.WithCondition(Eq(a, 9))
				if !Dominates(r, child) {
					t.Fatalf("parent does not dominate pattern child")
				}
				break
			}
		}
	}
}

func TestDominatesRequiresSameTarget(t *testing.T) {
	a := New([]AttrPair{{0, 0}}, 2, 2, nil)
	b := New([]AttrPair{{0, 0}, {1, 1}}, 3, 2, nil)
	if Dominates(a, b) {
		t.Error("rules with different Y should not dominate")
	}
}

func TestDominatesDifferentPatternValues(t *testing.T) {
	a := New([]AttrPair{{0, 0}}, 2, 2, []Condition{Eq(1, 1)})
	b := New([]AttrPair{{0, 0}}, 2, 2, []Condition{Eq(1, 2)})
	if Dominates(a, b) || Dominates(b, a) {
		t.Error("sibling pattern rules should be incomparable")
	}
}

func TestPatternDominates(t *testing.T) {
	p1 := []Condition{Eq(0, 1)}
	p2 := []Condition{Eq(0, 1), Eq(2, 3)}
	if !PatternDominates(p1, p2) {
		t.Error("subset pattern should dominate")
	}
	if PatternDominates(p2, p1) {
		t.Error("superset pattern should not dominate")
	}
	if !PatternDominates(nil, p1) {
		t.Error("empty pattern dominates everything")
	}
	p3 := []Condition{Eq(0, 9)}
	if PatternDominates(p3, p2) {
		t.Error("same attr different value should not dominate")
	}
}

func TestTopKNonRedundant(t *testing.T) {
	general := New([]AttrPair{{0, 0}}, 5, 5, nil)
	refined := New([]AttrPair{{0, 0}}, 5, 5, []Condition{Eq(1, 1)})
	sibling := New([]AttrPair{{0, 0}}, 5, 5, []Condition{Eq(1, 2)})
	other := New([]AttrPair{{2, 2}}, 5, 5, nil)

	// The refined rule has the highest utility: it is selected first,
	// its dominating general parent is excluded, its sibling and the
	// unrelated rule survive.
	cands := []Scored{
		{Rule: general, Utility: 5},
		{Rule: refined, Utility: 10},
		{Rule: sibling, Utility: 7},
		{Rule: other, Utility: 3},
	}
	got := TopKNonRedundant(cands, 10)
	keys := make(map[string]bool)
	for _, g := range got {
		keys[g.Rule.Key()] = true
	}
	if !keys[refined.Key()] || !keys[sibling.Key()] || !keys[other.Key()] {
		t.Errorf("missing expected rules: %v", keys)
	}
	if keys[general.Key()] {
		t.Error("dominating general rule selected alongside refinement")
	}
	if len(got) != 3 {
		t.Errorf("selected %d rules, want 3", len(got))
	}

	// K truncates.
	if got := TopKNonRedundant(cands, 1); len(got) != 1 || got[0].Rule.Key() != refined.Key() {
		t.Errorf("top-1 = %v", got)
	}
}

func TestTopKDeterministicTieBreak(t *testing.T) {
	a := New([]AttrPair{{0, 0}}, 5, 5, nil)
	b := New([]AttrPair{{1, 1}}, 5, 5, nil)
	c1 := TopKNonRedundant([]Scored{{a, 1}, {b, 1}}, 2)
	c2 := TopKNonRedundant([]Scored{{b, 1}, {a, 1}}, 2)
	if c1[0].Rule.Key() != c2[0].Rule.Key() {
		t.Error("tie break depends on input order")
	}
}
