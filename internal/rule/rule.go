// Package rule implements the editing-rule (eR) formalism of the paper
// (Definition 1): φ = ((X, X_m) → (Y, Y_m), t_p), together with pattern
// and rule domination (Definitions 2–3) and non-redundant rule sets
// (Definition 4).
//
// A pattern condition generalises the paper's single-constant t_p[A] = a
// to a set of codes on attribute A. A singleton set is exactly the
// paper's constant condition; a larger set represents one encoding unit
// produced by continuous-range splitting or prefix-bucket domain
// compression (§IV-A), where one action/state dimension stands for a
// group of raw values.
package rule

import (
	"fmt"
	"sort"
	"strings"

	"erminer/internal/relation"
)

// AttrPair is one (A, A_m) pair in LHS(φ): Input indexes the input schema
// R, Master indexes the master schema R_m.
type AttrPair struct {
	Input  int
	Master int
}

// Condition is one conjunct of the pattern tuple t_p: the input tuple's
// value on Attr must be one of Codes (or, when Negate is set, must be a
// non-Null value outside Codes — the ā form of Fan et al. [18] that the
// paper omits for simplicity and this implementation supports as an
// optional extension). Codes is sorted ascending and contains no
// duplicates and never relation.Null.
type Condition struct {
	Attr  int
	Codes []int32
	// Negate flips the membership test: t_p[Attr] ≠ a.
	Negate bool
	// Label is an optional human-readable description of the code set,
	// e.g. "age∈[28,37)" for a continuous range. It does not take part
	// in equality or domination.
	Label string
}

// NewCondition builds a condition, normalising (sorting, deduplicating)
// the code set.
func NewCondition(attr int, codes []int32, label string) Condition {
	cs := append([]int32(nil), codes...)
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	out := cs[:0]
	var prev int32 = -2
	for _, c := range cs {
		if c == relation.Null {
			continue
		}
		if c != prev {
			out = append(out, c)
			prev = c
		}
	}
	return Condition{Attr: attr, Codes: out, Label: label}
}

// Eq builds the paper's constant condition t_p[attr] = code.
func Eq(attr int, code int32) Condition {
	return Condition{Attr: attr, Codes: []int32{code}}
}

// NotEq builds the negated constant condition t_p[attr] ≠ code (the ā
// form of [18]).
func NotEq(attr int, code int32) Condition {
	return Condition{Attr: attr, Codes: []int32{code}, Negate: true}
}

// Matches reports whether code satisfies the condition. A Null value
// never matches — not even a negated condition, since a missing value
// provides no evidence either way.
func (c Condition) Matches(code int32) bool {
	if code == relation.Null {
		return false
	}
	return c.contains(code) != c.Negate
}

func (c Condition) contains(code int32) bool {
	// Codes is sorted; binary search.
	lo, hi := 0, len(c.Codes)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case c.Codes[mid] == code:
			return true
		case c.Codes[mid] < code:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false
}

// SameCodes reports whether two conditions constrain the same attribute to
// the same code set with the same polarity.
func (c Condition) SameCodes(o Condition) bool {
	if c.Attr != o.Attr || c.Negate != o.Negate || len(c.Codes) != len(o.Codes) {
		return false
	}
	for i := range c.Codes {
		if c.Codes[i] != o.Codes[i] {
			return false
		}
	}
	return true
}

// Rule is one editing rule φ = ((X, X_m) → (Y, Y_m), t_p).
//
// LHS holds the matched attribute pairs (X, X_m); Pattern holds the
// conjuncts of t_p. Both are kept sorted (LHS by input attribute, Pattern
// by attribute then first code) so that equal rules have equal canonical
// keys.
type Rule struct {
	LHS     []AttrPair
	Y       int // dependent attribute in R
	Ym      int // dependent attribute in R_m
	Pattern []Condition
}

// New builds a rule, normalising the order of LHS and Pattern.
func New(lhs []AttrPair, y, ym int, pattern []Condition) *Rule {
	r := &Rule{
		LHS:     append([]AttrPair(nil), lhs...),
		Y:       y,
		Ym:      ym,
		Pattern: append([]Condition(nil), pattern...),
	}
	r.normalise()
	return r
}

func (r *Rule) normalise() {
	sort.Slice(r.LHS, func(i, j int) bool {
		if r.LHS[i].Input != r.LHS[j].Input {
			return r.LHS[i].Input < r.LHS[j].Input
		}
		return r.LHS[i].Master < r.LHS[j].Master
	})
	sort.Slice(r.Pattern, func(i, j int) bool {
		a, b := r.Pattern[i], r.Pattern[j]
		if a.Attr != b.Attr {
			return a.Attr < b.Attr
		}
		if len(a.Codes) == 0 || len(b.Codes) == 0 {
			return len(a.Codes) < len(b.Codes)
		}
		return a.Codes[0] < b.Codes[0]
	})
}

// Clone returns a deep copy of the rule.
func (r *Rule) Clone() *Rule {
	c := &Rule{
		LHS:     append([]AttrPair(nil), r.LHS...),
		Y:       r.Y,
		Ym:      r.Ym,
		Pattern: make([]Condition, len(r.Pattern)),
	}
	for i, p := range r.Pattern {
		c.Pattern[i] = Condition{
			Attr:   p.Attr,
			Codes:  append([]int32(nil), p.Codes...),
			Negate: p.Negate,
			Label:  p.Label,
		}
	}
	return c
}

// WithLHS returns a copy of the rule with (a, am) added to LHS.
func (r *Rule) WithLHS(a, am int) *Rule {
	c := r.Clone()
	c.LHS = append(c.LHS, AttrPair{Input: a, Master: am})
	c.normalise()
	return c
}

// WithCondition returns a copy of the rule with cond added to the pattern.
func (r *Rule) WithCondition(cond Condition) *Rule {
	c := r.Clone()
	c.Pattern = append(c.Pattern, cond)
	c.normalise()
	return c
}

// HasLHSAttr reports whether input attribute a appears in X.
func (r *Rule) HasLHSAttr(a int) bool {
	for _, p := range r.LHS {
		if p.Input == a {
			return true
		}
	}
	return false
}

// HasPatternAttr reports whether attribute a appears in X_p.
func (r *Rule) HasPatternAttr(a int) bool {
	for _, c := range r.Pattern {
		if c.Attr == a {
			return true
		}
	}
	return false
}

// Key returns a canonical string key identifying the rule. Two rules have
// equal keys iff they have the same LHS, dependent pair and pattern
// (labels excluded).
func (r *Rule) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Y%d:%d|L", r.Y, r.Ym)
	for _, p := range r.LHS {
		fmt.Fprintf(&b, "(%d,%d)", p.Input, p.Master)
	}
	b.WriteString("|P")
	for _, c := range r.Pattern {
		if c.Negate {
			fmt.Fprintf(&b, "(!%d:", c.Attr)
		} else {
			fmt.Fprintf(&b, "(%d:", c.Attr)
		}
		for i, code := range c.Codes {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", code)
		}
		b.WriteByte(')')
	}
	return b.String()
}

// MatchesPattern reports whether input tuple row of rel matches t_p.
func (r *Rule) MatchesPattern(rel *relation.Relation, row int) bool {
	for _, c := range r.Pattern {
		if !c.Matches(rel.Code(row, c.Attr)) {
			return false
		}
	}
	return true
}

// String renders the rule using attribute names from the two schemas and
// values from the input relation's dictionaries.
func (r *Rule) String(input *relation.Relation, rm *relation.Schema) string {
	rs := input.Schema()
	var b strings.Builder
	b.WriteString("((")
	for i, p := range r.LHS {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%s,%s)", rs.Attr(p.Input).Name, rm.Attr(p.Master).Name)
	}
	fmt.Fprintf(&b, ") -> (%s,%s), tp[", rs.Attr(r.Y).Name, rm.Attr(r.Ym).Name)
	for i, c := range r.Pattern {
		if i > 0 {
			b.WriteString(", ")
		}
		if c.Label != "" {
			b.WriteString(c.Label)
			continue
		}
		op, setOp := "=", "∈"
		if c.Negate {
			op, setOp = "≠", "∉"
		}
		if len(c.Codes) == 1 {
			fmt.Fprintf(&b, "%s%s%s", rs.Attr(c.Attr).Name, op, input.Dict(c.Attr).Value(c.Codes[0]))
		} else {
			fmt.Fprintf(&b, "%s%s{", rs.Attr(c.Attr).Name, setOp)
			for j, code := range c.Codes {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(input.Dict(c.Attr).Value(code))
			}
			b.WriteByte('}')
		}
	}
	b.WriteString("])")
	return b.String()
}
