package rule

import "sort"

// PatternDominates reports whether pattern p1 dominates p2 (Definition 2):
// the attributes constrained by p1 are a subset of those constrained by
// p2, and on the shared attributes the conditions agree.
func PatternDominates(p1, p2 []Condition) bool {
	if len(p1) > len(p2) {
		return false
	}
	// Both slices are sorted by attribute (rules normalise on build).
	j := 0
	for _, c1 := range p1 {
		found := false
		for ; j < len(p2); j++ {
			if p2[j].Attr == c1.Attr {
				if !p2[j].SameCodes(c1) {
					return false
				}
				found = true
				j++
				break
			}
			if p2[j].Attr > c1.Attr {
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// lhsSubset reports whether l1 ⊆ l2 as sets of attribute pairs. Both are
// sorted by (Input, Master).
func lhsSubset(l1, l2 []AttrPair) bool {
	if len(l1) > len(l2) {
		return false
	}
	j := 0
	for _, p := range l1 {
		found := false
		for ; j < len(l2); j++ {
			if l2[j] == p {
				found = true
				j++
				break
			}
			if l2[j].Input > p.Input ||
				(l2[j].Input == p.Input && l2[j].Master > p.Master) {
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Dominates reports whether φ1 dominates φ2 (Definition 3): they share the
// dependent pair, X1 ⊆ X2, X_m1 ⊆ X_m2 and t_p1 dominates t_p2, with at
// least one of the containments strict (a rule does not dominate itself).
func Dominates(r1, r2 *Rule) bool {
	if r1.Y != r2.Y || r1.Ym != r2.Ym {
		return false
	}
	if !lhsSubset(r1.LHS, r2.LHS) || !PatternDominates(r1.Pattern, r2.Pattern) {
		return false
	}
	return len(r1.LHS) < len(r2.LHS) || len(r1.Pattern) < len(r2.Pattern)
}

// Scored pairs a rule with its utility for top-K selection.
type Scored struct {
	Rule    *Rule
	Utility float64
}

// TopKNonRedundant selects up to k rules with the highest utility such that
// no selected rule dominates another (Definition 4 + Problem 1). Rules are
// considered in descending utility; a candidate is skipped if it dominates
// or is dominated by an already-selected rule. Ties break on the canonical
// key to keep the selection deterministic.
func TopKNonRedundant(cands []Scored, k int) []Scored {
	sorted := append([]Scored(nil), cands...)
	sortScored(sorted)
	var out []Scored
	for _, c := range sorted {
		if len(out) >= k {
			break
		}
		ok := true
		for _, chosen := range out {
			if Dominates(c.Rule, chosen.Rule) || Dominates(chosen.Rule, c.Rule) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out
}

func sortScored(s []Scored) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Utility != s[j].Utility {
			return s[i].Utility > s[j].Utility
		}
		return s[i].Rule.Key() < s[j].Rule.Key()
	})
}
