package cfd

import (
	"fmt"
	"math/rand"
	"testing"

	"erminer/internal/core"
	"erminer/internal/relation"
	"erminer/internal/rule"
	"erminer/internal/schema"
)

// fdProblem plants an exact FD (A, B) → Y in the master data; input data
// shares the distribution.
func fdProblem(t testing.TB, seed int64) *core.Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pool := relation.NewPool()
	in := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "B", Domain: "b"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	ms := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "B", Domain: "b"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	input := relation.New(in, pool)
	master := relation.New(ms, pool)
	for i := 0; i < 400; i++ {
		a, b := rng.Intn(3), rng.Intn(3)
		row := []string{
			fmt.Sprintf("a%d", a), fmt.Sprintf("b%d", b),
			fmt.Sprintf("y%d", (a+2*b)%4),
		}
		input.AppendRow(row)
		master.AppendRow(row)
	}
	return &core.Problem{
		Input:            input,
		Master:           master,
		Match:            schema.AutoMatch(in, ms),
		Y:                2,
		Ym:               2,
		SupportThreshold: 10,
		TopK:             10,
	}
}

func TestCTANEFindsPlantedFD(t *testing.T) {
	p := fdProblem(t, 1)
	res, err := New(Config{}).Mine(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) == 0 {
		t.Fatal("no rules discovered")
	}
	// The planted FD (A, B) → Y must appear (possibly as the top rule by
	// master support).
	found := false
	for _, r := range res.Rules {
		if r.Rule.HasLHSAttr(0) && r.Rule.HasLHSAttr(1) && len(r.Rule.Pattern) == 0 {
			found = true
		}
	}
	if !found {
		t.Error("planted FD (A,B) -> Y not discovered")
	}
}

func TestCTANERulesConvertCleanly(t *testing.T) {
	p := fdProblem(t, 2)
	res, err := New(Config{}).Mine(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rules {
		if r.Rule.Y != p.Y || r.Rule.Ym != p.Ym {
			t.Errorf("converted rule has wrong target: %d/%d", r.Rule.Y, r.Rule.Ym)
		}
		if len(r.Rule.LHS) == 0 {
			t.Error("constant-only CFD converted to empty-LHS eR")
		}
		for _, pr := range r.Rule.LHS {
			if pr.Input < 0 || pr.Input >= p.Input.Schema().Len() {
				t.Errorf("bad input attr %d", pr.Input)
			}
		}
	}
}

func TestCTANEResultNonRedundant(t *testing.T) {
	p := fdProblem(t, 3)
	res, err := New(Config{}).Mine(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range res.Rules {
		for j, b := range res.Rules {
			if i != j && rule.Dominates(a.Rule, b.Rule) {
				t.Errorf("rule %d dominates rule %d", i, j)
			}
		}
	}
}

// TestCTANEMinimality: once a variable-only CFD holds, its refinements
// (larger LHS, added constants) must not be emitted.
func TestCTANEMinimality(t *testing.T) {
	// Y is constant: the single-attribute CFD A → Y holds immediately,
	// so nothing deeper should be mined on A.
	pool := relation.NewPool()
	in := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "B", Domain: "b"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	ms := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "B", Domain: "b"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	input := relation.New(in, pool)
	master := relation.New(ms, pool)
	for i := 0; i < 100; i++ {
		row := []string{fmt.Sprintf("a%d", i%3), fmt.Sprintf("b%d", i%4), "const"}
		input.AppendRow(row)
		master.AppendRow(row)
	}
	p := &core.Problem{
		Input: input, Master: master,
		Match: schema.AutoMatch(in, ms),
		Y:     2, Ym: 2, SupportThreshold: 5, TopK: 50,
	}
	res, err := New(Config{}).Mine(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rules {
		if len(r.Rule.LHS)+len(r.Rule.Pattern) > 1 {
			t.Errorf("non-minimal CFD emitted: %s", r.Rule.String(input, ms))
		}
	}
}

// TestCTANEConfidenceThreshold: with a noisy master, only a strict-enough
// confidence threshold admits the dependency.
func TestCTANEConfidenceThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pool := relation.NewPool()
	in := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	ms := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	input := relation.New(in, pool)
	master := relation.New(ms, pool)
	for i := 0; i < 300; i++ {
		a := rng.Intn(2)
		y := fmt.Sprintf("y%d", a)
		if rng.Intn(10) == 0 { // 10% noise
			y = fmt.Sprintf("y%d", 1-a)
		}
		row := []string{fmt.Sprintf("a%d", a), y}
		input.AppendRow(row)
		master.AppendRow(row)
	}
	p := &core.Problem{
		Input: input, Master: master,
		Match: schema.AutoMatch(in, ms),
		Y:     1, Ym: 1, SupportThreshold: 10, TopK: 10,
	}
	strict, err := New(Config{MinConfidence: 0.99}).Mine(p)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := New(Config{MinConfidence: 0.85}).Mine(p)
	if err != nil {
		t.Fatal(err)
	}
	hasAtoY := func(rs *core.ResultSet) bool {
		for _, r := range rs.Rules {
			if len(r.Rule.LHS) == 1 && r.Rule.LHS[0].Input == 0 && len(r.Rule.Pattern) == 0 {
				return true
			}
		}
		return false
	}
	if hasAtoY(strict) {
		t.Error("A -> Y admitted at 0.99 confidence despite 10% noise")
	}
	if !hasAtoY(loose) {
		t.Error("A -> Y rejected at 0.85 confidence")
	}
}

func TestCTANEMaxLevel(t *testing.T) {
	p := fdProblem(t, 5)
	res, err := New(Config{MaxLevel: 1}).Mine(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rules {
		if len(r.Rule.LHS)+len(r.Rule.Pattern) > 1 {
			t.Errorf("rule exceeds MaxLevel 1")
		}
	}
}

func TestCTANEName(t *testing.T) {
	if got := New(Config{}).Name(); got != "CTANE" {
		t.Errorf("Name = %q", got)
	}
}

func TestCTANEInvalidProblem(t *testing.T) {
	if _, err := New(Config{}).Mine(&core.Problem{}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}
