// Package cfd implements the CTANE baseline of the paper's experiments
// (§V-A2): constant conditional functional dependencies (CFDs) are mined
// from the clean master data with a levelwise, support-pruned lattice
// walk (after Fan et al., "Discovering conditional functional
// dependencies" [16, 17]), and the CFDs whose attributes are matched with
// input attributes are converted into editing rules.
//
// As the paper discusses (§I-A, §V-B2), this strategy ignores input-side
// conditions and inherits the master data's distribution, which is what
// produces its characteristically low recall in Table III.
package cfd

import (
	"sort"

	"erminer/internal/core"
	"erminer/internal/relation"
	"erminer/internal/rule"
)

// Config controls the CTANE run.
type Config struct {
	// MinConfidence is the CFD confidence threshold; a group structure
	// whose dominant Y value covers at least this fraction of matching
	// master tuples is emitted. Zero means the default 0.95.
	MinConfidence float64
	// MinSupport is the master-side support threshold. Zero derives it
	// from the problem's η_s scaled by |D_m| / |D| (at least 5).
	MinSupport int
	// MaxLevel bounds |X| + |t_p|; zero means the default 4.
	MaxLevel int
}

func (c Config) minConfidence() float64 {
	if c.MinConfidence > 0 {
		return c.MinConfidence
	}
	return 0.95
}

func (c Config) maxLevel() int {
	if c.MaxLevel > 0 {
		return c.MaxLevel
	}
	return 4
}

// Miner mines constant CFDs on master data and converts them to eRs.
type Miner struct {
	cfg Config
}

// New returns a CTANE miner.
func New(cfg Config) *Miner { return &Miner{cfg: cfg} }

// Name implements core.Miner.
func (m *Miner) Name() string { return "CTANE" }

// dim is one lattice dimension: a wildcard attribute or a constant.
type dim struct {
	attr  int   // master attribute
	code  int32 // constant value; ignored when wildcard
	isVar bool  // true: wildcard LHS attribute; false: constant
}

// cfdNode is one lattice element.
type cfdNode struct {
	vars   []int            // wildcard attrs, sorted
	consts []rule.Condition // constants as input... master-side conditions
	rows   []int32          // master rows matching the constants
	maxDim int
}

// mined is one emitted CFD.
type mined struct {
	vars    []int
	consts  []rule.Condition // conditions over master attributes
	support int
	conf    float64
}

// Mine implements core.Miner.
func (m *Miner) Mine(p *core.Problem) (*core.ResultSet, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	master := p.Master

	minSupp := m.cfg.MinSupport
	if minSupp == 0 {
		minSupp = p.SupportThreshold * master.NumRows() / maxInt(1, p.Input.NumRows())
		if minSupp < 5 {
			minSupp = 5
		}
	}

	// Invert the match: master attribute → input attribute (first match).
	inputOf := make(map[int]int)
	for _, pr := range p.Match.Pairs() {
		if _, ok := inputOf[pr[1]]; !ok {
			inputOf[pr[1]] = pr[0]
		}
	}

	// Lattice dimensions over matched master attributes (excluding Y_m).
	var dims []dim
	attrs := make([]int, 0, len(inputOf))
	for am := range inputOf {
		if am != p.Ym {
			attrs = append(attrs, am)
		}
	}
	sort.Ints(attrs)
	for _, am := range attrs {
		dims = append(dims, dim{attr: am, isVar: true})
		for _, code := range master.DomainCodes(am) {
			dims = append(dims, dim{attr: am, code: code})
		}
	}

	allRows := make([]int32, master.NumRows())
	for i := range allRows {
		allRows[i] = int32(i)
	}
	root := &cfdNode{rows: allRows, maxDim: -1}

	var (
		queue    = []*cfdNode{root}
		emitted  []mined
		explored = 0
	)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if len(n.vars)+len(n.consts) >= m.cfg.maxLevel() {
			continue
		}
		for d := n.maxDim + 1; d < len(dims); d++ {
			dd := dims[d]
			if attrUsed(n, dd.attr) {
				continue
			}
			explored++
			child := &cfdNode{
				vars:   append([]int(nil), n.vars...),
				consts: append([]rule.Condition(nil), n.consts...),
				maxDim: d,
			}
			if dd.isVar {
				child.vars = append(child.vars, dd.attr)
				sort.Ints(child.vars)
				child.rows = n.rows
			} else {
				child.consts = append(child.consts, rule.Eq(dd.attr, dd.code))
				child.rows = filterRows(master, n.rows, dd.attr, dd.code)
			}
			if len(child.rows) < minSupp {
				continue // support pruning: refinements only shrink
			}
			if len(child.vars) > 0 {
				supp, conf := confidence(master, child, p.Ym)
				if supp >= minSupp && conf >= m.cfg.minConfidence() {
					emitted = append(emitted, mined{
						vars:    child.vars,
						consts:  child.consts,
						support: supp,
						conf:    conf,
					})
					continue // minimality: do not refine a valid CFD
				}
			}
			queue = append(queue, child)
		}
	}

	rules := m.convert(p, inputOf, emitted)
	return &core.ResultSet{Rules: rules, Explored: explored}, nil
}

func attrUsed(n *cfdNode, attr int) bool {
	for _, a := range n.vars {
		if a == attr {
			return true
		}
	}
	for _, c := range n.consts {
		if c.Attr == attr {
			return true
		}
	}
	return false
}

func filterRows(master *relation.Relation, rows []int32, attr int, code int32) []int32 {
	out := make([]int32, 0, len(rows))
	col := master.Column(attr)
	for _, r := range rows {
		if col[r] == code {
			out = append(out, r)
		}
	}
	return out
}

// confidence groups the node's rows by its wildcard attributes and
// returns the support (rows with non-Null Y) and the CFD confidence: the
// fraction of rows whose Y equals their group's dominant Y value.
func confidence(master *relation.Relation, n *cfdNode, ym int) (int, float64) {
	type group struct {
		counts map[int32]int
		total  int
	}
	groups := make(map[string]*group)
	var key []byte
	for _, r := range n.rows {
		y := master.Code(int(r), ym)
		if y == relation.Null {
			continue
		}
		key = key[:0]
		ok := true
		for _, a := range n.vars {
			c := master.Code(int(r), a)
			if c == relation.Null {
				ok = false
				break
			}
			key = append(key, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
		}
		if !ok {
			continue
		}
		g := groups[string(key)]
		if g == nil {
			g = &group{counts: make(map[int32]int)}
			groups[string(key)] = g
		}
		g.counts[y]++
		g.total++
	}
	total, kept := 0, 0
	for _, g := range groups {
		max := 0
		for _, c := range g.counts {
			if c > max {
				max = c
			}
		}
		total += g.total
		kept += max
	}
	if total == 0 {
		return 0, 0
	}
	return total, float64(kept) / float64(total)
}

// convert maps the mined CFDs to editing rules over the input schema and
// selects the non-redundant top-K by master support (the CFDs carry no
// input-side utility by construction; the paper applies them as-is).
func (m *Miner) convert(p *core.Problem, inputOf map[int]int, emitted []mined) []core.MinedRule {
	ev := p.NewEvaluator()
	type cand struct {
		r    *rule.Rule
		supp int
	}
	var cands []cand
	seen := make(map[string]bool)
	for _, e := range emitted {
		var lhs []rule.AttrPair
		for _, am := range e.vars {
			lhs = append(lhs, rule.AttrPair{Input: inputOf[am], Master: am})
		}
		var pattern []rule.Condition
		ok := true
		for _, c := range e.consts {
			a, matched := inputOf[c.Attr]
			if !matched {
				ok = false
				break
			}
			// Codes are shared between matched attributes (common
			// dictionary domain), so the master-side constant carries
			// over unchanged.
			pattern = append(pattern, rule.NewCondition(a, c.Codes, ""))
		}
		if !ok {
			continue
		}
		r := rule.New(lhs, p.Y, p.Ym, pattern)
		if seen[r.Key()] {
			continue
		}
		seen[r.Key()] = true
		cands = append(cands, cand{r: r, supp: e.support})
	}

	// Non-redundant top-K by master support.
	scored := make([]rule.Scored, len(cands))
	for i, c := range cands {
		scored[i] = rule.Scored{Rule: c.r, Utility: float64(c.supp)}
	}
	top := rule.TopKNonRedundant(scored, p.K())

	out := make([]core.MinedRule, 0, len(top))
	for _, s := range top {
		out = append(out, core.MinedRule{
			Rule:     s.Rule,
			Measures: ev.Evaluate(s.Rule, nil),
		})
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
