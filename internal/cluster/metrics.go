package cluster

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyWindow mirrors the single-node daemon's percentile ring: a
// fixed window bounds memory, p50/p99 computed at scrape time.
const latencyWindow = 1024

// metrics holds the coordinator's counters, exported under the
// ermcluster_ prefix in the same flat `name value` text format as the
// workers' erminerd_ metrics, so one scraper config covers both roles.
type metrics struct {
	start        time.Time
	workersTotal int

	requestsTotal    atomic.Int64 // every HTTP request received
	inFlightRepair   atomic.Int64 // POST /v1/repair requests inside the handler
	inFlightValidate atomic.Int64 // POST /v1/validate requests inside the handler
	tuplesSeen       atomic.Int64 // tuples received across repair+validate
	repairsApplied   atomic.Int64 // cells changed across the merged responses
	subbatchesTotal  atomic.Int64 // sub-batches dispatched to workers
	retriesTotal     atomic.Int64 // same-worker retry attempts
	redispatches     atomic.Int64 // sub-batches hedged to a different worker
	workerFailures   atomic.Int64 // workers marked dead by the dispatch path
	rulePushes       atomic.Int64 // successful two-phase rule pushes
	dataPatches      atomic.Int64 // data deltas replicated to the fleet
	healthChecks     atomic.Int64 // completed health-check rounds

	latMu sync.Mutex
	lat   [latencyWindow]float64 // guarded by latMu; milliseconds
	latN  int64                  // guarded by latMu; total observations
}

func newMetrics(workers int) *metrics {
	return &metrics{start: time.Now(), workersTotal: workers}
}

func (m *metrics) observeLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.latMu.Lock()
	m.lat[m.latN%latencyWindow] = ms
	m.latN++
	m.latMu.Unlock()
}

func (m *metrics) percentiles() (p50, p99 float64, total int64) {
	m.latMu.Lock()
	total = m.latN
	n := m.latN
	if n > latencyWindow {
		n = latencyWindow
	}
	buf := make([]float64, n)
	copy(buf, m.lat[:n])
	m.latMu.Unlock()
	if n == 0 {
		return 0, 0, total
	}
	sort.Float64s(buf)
	rank := func(q float64) float64 {
		i := int(q*float64(n-1) + 0.5)
		return buf[i]
	}
	return rank(0.50), rank(0.99), total
}

func (m *metrics) write(w io.Writer, healthy, skew int, generation int64) {
	p50, p99, latCount := m.percentiles()
	fmt.Fprintf(w, "ermcluster_uptime_seconds %.0f\n", time.Since(m.start).Seconds())
	fmt.Fprintf(w, "ermcluster_requests_total %d\n", m.requestsTotal.Load())
	fmt.Fprintf(w, "ermcluster_requests_in_flight_repair %d\n", m.inFlightRepair.Load())
	fmt.Fprintf(w, "ermcluster_requests_in_flight_validate %d\n", m.inFlightValidate.Load())
	fmt.Fprintf(w, "ermcluster_tuples_total %d\n", m.tuplesSeen.Load())
	fmt.Fprintf(w, "ermcluster_repairs_applied_total %d\n", m.repairsApplied.Load())
	fmt.Fprintf(w, "ermcluster_workers_total %d\n", m.workersTotal)
	fmt.Fprintf(w, "ermcluster_workers_healthy %d\n", healthy)
	fmt.Fprintf(w, "ermcluster_generation_skew %d\n", skew)
	fmt.Fprintf(w, "ermcluster_subbatches_total %d\n", m.subbatchesTotal.Load())
	fmt.Fprintf(w, "ermcluster_retries_total %d\n", m.retriesTotal.Load())
	fmt.Fprintf(w, "ermcluster_redispatches_total %d\n", m.redispatches.Load())
	fmt.Fprintf(w, "ermcluster_worker_failures_total %d\n", m.workerFailures.Load())
	fmt.Fprintf(w, "ermcluster_rule_pushes_total %d\n", m.rulePushes.Load())
	fmt.Fprintf(w, "ermcluster_data_patches_total %d\n", m.dataPatches.Load())
	fmt.Fprintf(w, "ermcluster_rules_generation %d\n", generation)
	fmt.Fprintf(w, "ermcluster_health_checks_total %d\n", m.healthChecks.Load())
	// As on the workers: every outcome is counted, so the percentiles can
	// be read against the true request population.
	fmt.Fprintf(w, "ermcluster_repair_latency_count %d\n", latCount)
	fmt.Fprintf(w, "ermcluster_repair_latency_p50_ms %.3f\n", p50)
	fmt.Fprintf(w, "ermcluster_repair_latency_p99_ms %.3f\n", p99)
}
