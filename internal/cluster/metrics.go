package cluster

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	obs "erminer/internal/metrics"
)

// The coordinator's metric names, exported under the ermcluster_ prefix
// in the same flat `name value` text format as the workers' erminerd_
// metrics, so one scraper config covers both roles. As in the worker
// daemon, every name is a const pinned by the ermvet metricdrift
// manifest: a rename or drop without regenerating metrics_names.json
// fails the build.
const (
	metricUptimeSeconds       = "ermcluster_uptime_seconds"
	metricRequestsTotal       = "ermcluster_requests_total"
	metricInFlightRepair      = "ermcluster_requests_in_flight_repair"
	metricInFlightValidate    = "ermcluster_requests_in_flight_validate"
	metricTuplesTotal         = "ermcluster_tuples_total"
	metricRepairsAppliedTotal = "ermcluster_repairs_applied_total"
	metricWorkersTotal        = "ermcluster_workers_total"
	metricWorkersHealthy      = "ermcluster_workers_healthy"
	metricGenerationSkew      = "ermcluster_generation_skew"
	metricSubbatchesTotal     = "ermcluster_subbatches_total"
	metricRetriesTotal        = "ermcluster_retries_total"
	metricRedispatchesTotal   = "ermcluster_redispatches_total"
	metricWorkerFailuresTotal = "ermcluster_worker_failures_total"
	metricRulePushesTotal     = "ermcluster_rule_pushes_total"
	metricDataPatchesTotal    = "ermcluster_data_patches_total"
	metricRulesGeneration     = "ermcluster_rules_generation"
	metricHealthChecksTotal   = "ermcluster_health_checks_total"
	metricRepairLatencyCount  = "ermcluster_repair_latency_count"
	metricRepairLatencyP50    = "ermcluster_repair_latency_p50_ms"
	metricRepairLatencyP99    = "ermcluster_repair_latency_p99_ms"
)

// metrics holds the coordinator's counters.
type metrics struct {
	start        time.Time
	workersTotal int

	requestsTotal    atomic.Int64 // every HTTP request received
	inFlightRepair   atomic.Int64 // POST /v1/repair requests inside the handler
	inFlightValidate atomic.Int64 // POST /v1/validate requests inside the handler
	tuplesSeen       atomic.Int64 // tuples received across repair+validate
	repairsApplied   atomic.Int64 // cells changed across the merged responses
	subbatchesTotal  atomic.Int64 // sub-batches dispatched to workers
	retriesTotal     atomic.Int64 // same-worker retry attempts
	redispatches     atomic.Int64 // sub-batches hedged to a different worker
	workerFailures   atomic.Int64 // workers marked dead by the dispatch path
	rulePushes       atomic.Int64 // successful two-phase rule pushes
	dataPatches      atomic.Int64 // data deltas replicated to the fleet
	healthChecks     atomic.Int64 // completed health-check rounds

	lat obs.LatencyRing // the shared p50/p99 window estimator
}

func newMetrics(workers int) *metrics {
	return &metrics{start: time.Now(), workersTotal: workers}
}

func (m *metrics) observeLatency(d time.Duration) {
	m.lat.Observe(d)
}

func (m *metrics) write(w io.Writer, healthy, skew int, generation int64) {
	p50, p99, latCount := m.lat.Percentiles()
	fmt.Fprintf(w, "%s %.0f\n", metricUptimeSeconds, time.Since(m.start).Seconds())
	fmt.Fprintf(w, "%s %d\n", metricRequestsTotal, m.requestsTotal.Load())
	fmt.Fprintf(w, "%s %d\n", metricInFlightRepair, m.inFlightRepair.Load())
	fmt.Fprintf(w, "%s %d\n", metricInFlightValidate, m.inFlightValidate.Load())
	fmt.Fprintf(w, "%s %d\n", metricTuplesTotal, m.tuplesSeen.Load())
	fmt.Fprintf(w, "%s %d\n", metricRepairsAppliedTotal, m.repairsApplied.Load())
	fmt.Fprintf(w, "%s %d\n", metricWorkersTotal, m.workersTotal)
	fmt.Fprintf(w, "%s %d\n", metricWorkersHealthy, healthy)
	fmt.Fprintf(w, "%s %d\n", metricGenerationSkew, skew)
	fmt.Fprintf(w, "%s %d\n", metricSubbatchesTotal, m.subbatchesTotal.Load())
	fmt.Fprintf(w, "%s %d\n", metricRetriesTotal, m.retriesTotal.Load())
	fmt.Fprintf(w, "%s %d\n", metricRedispatchesTotal, m.redispatches.Load())
	fmt.Fprintf(w, "%s %d\n", metricWorkerFailuresTotal, m.workerFailures.Load())
	fmt.Fprintf(w, "%s %d\n", metricRulePushesTotal, m.rulePushes.Load())
	fmt.Fprintf(w, "%s %d\n", metricDataPatchesTotal, m.dataPatches.Load())
	fmt.Fprintf(w, "%s %d\n", metricRulesGeneration, generation)
	fmt.Fprintf(w, "%s %d\n", metricHealthChecksTotal, m.healthChecks.Load())
	// As on the workers: every outcome is counted, so the percentiles can
	// be read against the true request population.
	fmt.Fprintf(w, "%s %d\n", metricRepairLatencyCount, latCount)
	fmt.Fprintf(w, "%s %.3f\n", metricRepairLatencyP50, p50)
	fmt.Fprintf(w, "%s %.3f\n", metricRepairLatencyP99, p99)
}
