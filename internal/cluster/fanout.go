package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// passthrough is a worker's non-retryable (4xx) answer, relayed to the
// client verbatim: the worker already produced the canonical error body
// and second-guessing it would fork the error wire format.
type passthrough struct {
	status int
	body   []byte
}

func (p *passthrough) Error() string {
	return fmt.Sprintf("worker answered HTTP %d: %s", p.status, bytes.TrimSpace(p.body))
}

// retryableStatus reports whether a worker status code is worth another
// attempt: transient server-side states (5xx, including the bounded
// queue's 503/504) and queue rejection (429). 4xx semantics are the
// request's own fault and retrying cannot change them.
func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests
}

// dispatch sends one sub-batch to its pinned worker, retrying with
// exponential backoff, then hedges across the remaining healthy workers
// in ring order. It returns the successful worker's raw response bytes
// (or a *passthrough for a 4xx answer, which the caller relays). The
// method is threaded explicitly from the handler so every hop of a
// sub-batch carries the same (method, path) pair the httpcontract check
// resolves against the worker's registered routes.
func (c *Coordinator) dispatch(ctx context.Context, method, path string, body []byte, pinned int) ([]byte, error) {
	backoff := c.cfg.retryBackoff()
	var lastErr error
	for attempt := 0; attempt <= c.cfg.retries(); attempt++ {
		if attempt > 0 {
			c.metrics.retriesTotal.Add(1)
			if err := sleepCtx(ctx, backoff); err != nil {
				return nil, err
			}
			backoff *= 2
		}
		data, err := c.tryWorker(ctx, pinned, method, path, body)
		if err == nil {
			return data, nil
		}
		if pt, ok := err.(*passthrough); ok && !retryableStatus(pt.status) {
			return nil, pt
		}
		lastErr = err
	}

	// The pinned worker is out of budget: mark it down and hedge the
	// sub-batch across the rest of the fleet. One attempt per healthy
	// peer — the retry budget was the pinned worker's; a peer that also
	// fails is likely sharing its fate (network partition, bad push) and
	// burning backoff on it only delays the client's error.
	c.reg.markDead(pinned, lastErr)
	c.metrics.workerFailures.Add(1)
	n := len(c.workers)
	for off := 1; off < n; off++ {
		j := (pinned + off) % n
		if !c.reg.alive(j) {
			continue
		}
		c.metrics.redispatches.Add(1)
		data, err := c.tryWorker(ctx, j, method, path, body)
		if err == nil {
			return data, nil
		}
		if pt, ok := err.(*passthrough); ok && !retryableStatus(pt.status) {
			return nil, pt
		}
		c.reg.markDead(j, err)
		c.metrics.workerFailures.Add(1)
		lastErr = err
	}
	return nil, fmt.Errorf("all workers failed for %s sub-batch pinned to worker %d: %w", path, pinned, lastErr)
}

// tryWorker makes one request attempt against one worker, bounded by
// the per-worker timeout. A non-200 answer comes back as *passthrough
// so the caller can distinguish retryable statuses from client errors.
func (c *Coordinator) tryWorker(ctx context.Context, i int, method, path string, body []byte) ([]byte, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.perWorkerTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(actx, method, c.workers[i]+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	//ermvet:ignore errdrop nothing to do about a close error after the body is fully read
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &passthrough{status: resp.StatusCode, body: data}
	}
	return data, nil
}

// sleepCtx is a context-aware backoff sleep.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
