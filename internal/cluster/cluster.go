// Package cluster is the horizontal scale-out layer of erminerd: a
// stateless coordinator that serves the same POST /v1/repair and
// /v1/validate batch API as a single daemon, hash-partitions each batch
// across N worker daemons, fans the sub-batches out over HTTP, and
// merges the sub-responses back in canonical input order — so a
// coordinator response is byte-identical to what one erminerd holding
// the whole batch would have produced.
//
// Topology and failure semantics (DESIGN.md decision 17):
//
//   - Tuples are the scale dimension, rules are not: every worker holds
//     the full master data and the full rule set, and each tuple is
//     pinned to a worker by a content hash of its column=value pairs.
//     The coordinator itself holds no problem, no dictionaries and no
//     rules — it can be restarted, load-balanced or replicated freely.
//   - Rule-set generations are the replication unit. PUT /v1/rules on
//     the coordinator is a two-phase push: stage the wire-format file on
//     every worker (each answers the generation's content hash, which
//     must agree everywhere), then activate that exact hash on every
//     worker. A failed stage aborts before any worker activates.
//   - Each sub-batch dispatch carries a per-worker timeout and bounded
//     retries with exponential backoff; when the pinned worker stays
//     down, the sub-batch is hedged — re-dispatched to the next healthy
//     worker, which can serve it because rules and master data are
//     replicated, not sharded. Results stay byte-identical because the
//     merge order is the original tuple order, not arrival order.
//   - A background health checker polls worker /healthz, tracking
//     liveness and rule-generation skew, exported as ermcluster_*
//     metrics.
package cluster

import (
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes the coordinator. Workers is required; every other field
// zero value is usable.
type Config struct {
	// Workers are the base URLs of the erminerd worker daemons, e.g.
	// "http://10.0.0.7:8080". At least one is required.
	Workers []string
	// PerWorkerTimeout bounds one dispatch attempt to one worker.
	// Zero means 10s.
	PerWorkerTimeout time.Duration
	// Retries is how many times a failed sub-batch is retried on its
	// pinned worker (with exponential backoff) before being re-dispatched
	// to a healthy peer. Zero means 2; negative means none.
	Retries int
	// RetryBackoff is the first retry's backoff, doubled per attempt.
	// Zero means 50ms.
	RetryBackoff time.Duration
	// RequestTimeout is the overall per-request deadline, covering every
	// retry and re-dispatch. Zero means 30s.
	RequestTimeout time.Duration
	// HealthInterval is the background health-check period. Zero means
	// 2s; negative disables the background checker (tests drive checks
	// explicitly).
	HealthInterval time.Duration
	// MaxBatch bounds tuples per repair/validate call, mirroring the
	// single-node daemon. Zero means 10000.
	MaxBatch int
	// MaxBody bounds request bodies in bytes. Zero means 32 MiB.
	MaxBody int64
	// Client overrides the HTTP client used for worker calls. Nil means
	// a private default whose Timeout is twice the per-worker timeout:
	// per-attempt deadlines come from request contexts, and the client
	// timeout is the belt-and-braces backstop should a context ever be
	// plumbed through without one.
	Client *http.Client
}

func (c Config) perWorkerTimeout() time.Duration {
	if c.PerWorkerTimeout > 0 {
		return c.PerWorkerTimeout
	}
	return 10 * time.Second
}

func (c Config) retries() int {
	switch {
	case c.Retries > 0:
		return c.Retries
	case c.Retries < 0:
		return 0
	}
	return 2
}

func (c Config) retryBackoff() time.Duration {
	if c.RetryBackoff > 0 {
		return c.RetryBackoff
	}
	return 50 * time.Millisecond
}

func (c Config) requestTimeout() time.Duration {
	if c.RequestTimeout > 0 {
		return c.RequestTimeout
	}
	return 30 * time.Second
}

func (c Config) healthInterval() time.Duration {
	if c.HealthInterval > 0 {
		return c.HealthInterval
	}
	if c.HealthInterval < 0 {
		return 0 // disabled
	}
	return 2 * time.Second
}

func (c Config) maxBatch() int {
	if c.MaxBatch > 0 {
		return c.MaxBatch
	}
	return 10000
}

func (c Config) maxBody() int64 {
	if c.MaxBody > 0 {
		return c.MaxBody
	}
	return 32 << 20
}

// Coordinator fans repair/validate batches out over the worker fleet
// and replicates rule-set generations to it. Build one with New, mount
// it as an http.Handler, stop it with Shutdown.
type Coordinator struct {
	cfg     Config
	workers []string // normalized base URLs; immutable after New
	client  *http.Client
	mux     *http.ServeMux
	reg     *registry
	metrics *metrics

	// generation counts successful coordinator-side rule pushes; it is
	// the version PUT /v1/rules answers (worker-local version counters
	// advance in lockstep but are not reported here).
	generation atomic.Int64

	// pushMu serializes rule pushes and guards the last pushed
	// generation's identity.
	pushMu    sync.Mutex
	lastETag  string // guarded by pushMu
	lastCount int    // guarded by pushMu

	closed   atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	loopDone chan struct{}
}

// New builds a Coordinator over the worker fleet and starts its
// background health checker (unless cfg.HealthInterval is negative).
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers configured")
	}
	workers := make([]string, len(cfg.Workers))
	for i, raw := range cfg.Workers {
		u, err := url.Parse(strings.TrimRight(raw, "/"))
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: worker %d: %q is not an absolute base URL", i, raw)
		}
		workers[i] = u.String()
	}
	client := cfg.Client
	if client == nil {
		// Context deadlines bind first; the explicit Timeout only fires
		// if a call path ever loses its context deadline.
		client = &http.Client{Timeout: 2 * cfg.perWorkerTimeout()}
	}
	c := &Coordinator{
		cfg:      cfg,
		workers:  workers,
		client:   client,
		reg:      newRegistry(workers),
		metrics:  newMetrics(len(workers)),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	c.routes()
	if iv := cfg.healthInterval(); iv > 0 {
		go c.healthLoop(iv)
	} else {
		close(c.loopDone)
	}
	return c, nil
}

// Workers returns the configured worker base URLs.
func (c *Coordinator) Workers() []string {
	out := make([]string, len(c.workers))
	copy(out, c.workers)
	return out
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.metrics.requestsTotal.Add(1)
	c.mux.ServeHTTP(w, r)
}

// Shutdown stops the background health checker and makes subsequent
// requests answer 503. In-flight HTTP requests are the caller's to
// drain (the net/http server's Shutdown does that). done bounds the
// wait for the checker to exit.
func (c *Coordinator) Shutdown(done <-chan struct{}) error {
	c.closed.Store(true)
	c.stopOnce.Do(func() { close(c.stop) })
	select {
	case <-c.loopDone:
		return nil
	case <-done:
		return fmt.Errorf("cluster: health checker did not stop in time")
	}
}

// healthLoop polls the fleet until Shutdown.
func (c *Coordinator) healthLoop(every time.Duration) {
	defer close(c.loopDone)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			c.checkAll()
		case <-c.stop:
			return
		}
	}
}
