package cluster

import (
	"hash/fnv"
	"sort"
)

// shardOf pins a tuple to a worker by FNV-1a over its column=value
// pairs in sorted column order. Content hashing (rather than position
// in the batch) keeps a tuple's worker affinity stable across batches,
// so a worker's serving dictionary and index-cache working set stay
// warm for "its" slice of the key space. Keys are sorted first because
// Go map iteration order is random and the shard must be a pure
// function of the tuple's contents.
func shardOf(t map[string]string, n int) int {
	if n <= 1 {
		return 0
	}
	keys := make([]string, 0, len(t))
	for k := range t {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := fnv.New64a()
	for _, k := range keys {
		// The \x00/\x01 separators keep ("ab","c") and ("a","bc")
		// from colliding into one hash stream.
		//ermvet:ignore errdrop fnv's Write is documented to never fail
		h.Write([]byte(k))
		//ermvet:ignore errdrop fnv's Write is documented to never fail
		h.Write([]byte{0})
		//ermvet:ignore errdrop fnv's Write is documented to never fail
		h.Write([]byte(t[k]))
		//ermvet:ignore errdrop fnv's Write is documented to never fail
		h.Write([]byte{1})
	}
	return int(h.Sum64() % uint64(n))
}

// partition maps a batch onto n workers, returning for each worker the
// original indices of its tuples, in input order. Sub-batches preserve
// relative input order, so a worker's k-th result row maps back to
// idx[k] during the merge.
func partition(tuples []map[string]string, n int) [][]int {
	parts := make([][]int, n)
	for i, t := range tuples {
		w := shardOf(t, n)
		parts[w] = append(parts[w], i)
	}
	return parts
}
