package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"erminer/internal/serve"
)

func (c *Coordinator) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+serve.PathRepair, c.handleRepair)
	mux.HandleFunc("POST "+serve.PathValidate, c.handleValidate)
	mux.HandleFunc("GET "+serve.PathRules, c.handleRulesGet)
	mux.HandleFunc("PUT "+serve.PathRules, c.handleRulesPut)
	mux.HandleFunc("PATCH "+serve.PathData, c.handleDataPatch)
	mux.HandleFunc("GET "+serve.PathHealthz, c.handleHealthz)
	mux.HandleFunc("GET "+serve.PathMetrics, c.handleMetrics)
	c.mux = mux
}

// httpError and writeJSON duplicate the worker daemon's encoders on
// purpose: byte-identity with single-node responses holds only if both
// roles serialize the same way (json.Encoder, trailing newline).
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	//ermvet:ignore errdrop a failed response write means the client is gone; there is no one to tell
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	//ermvet:ignore errdrop a failed response write means the client is gone; there is no one to tell
	json.NewEncoder(w).Encode(v)
}

// decodeBatch mirrors the worker's strict request decoding — identical
// limits and identical error strings, so a client cannot tell a
// coordinator's 400 from a worker's.
func (c *Coordinator) decodeBatch(w http.ResponseWriter, r *http.Request, req *serve.TupleBatch) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, c.cfg.maxBody()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	if dec.More() {
		httpError(w, http.StatusBadRequest, "bad request body: %v", errors.New("trailing data after JSON body"))
		return false
	}
	if len(req.Tuples) == 0 {
		httpError(w, http.StatusBadRequest, "empty tuple batch")
		return false
	}
	if len(req.Tuples) > c.cfg.maxBatch() {
		httpError(w, http.StatusBadRequest, "batch of %d tuples exceeds the %d limit", len(req.Tuples), c.cfg.maxBatch())
		return false
	}
	return true
}

// fanout partitions the batch, dispatches every non-empty sub-batch
// concurrently, and returns the per-worker raw response bytes (nil for
// workers that drew no tuples). On failure it writes the HTTP error —
// relaying the lowest-indexed worker's 4xx verbatim when the fault is
// the request's — and returns ok=false.
func (c *Coordinator) fanout(ctx context.Context, w http.ResponseWriter, method, path string, req serve.TupleBatch, parts [][]int) ([][]byte, bool) {
	n := len(c.workers)
	data := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if len(parts[i]) == 0 {
			continue
		}
		sub := serve.TupleBatch{
			Tuples:      make([]map[string]string, len(parts[i])),
			OnlyMissing: req.OnlyMissing,
			Explain:     req.Explain,
		}
		for k, idx := range parts[i] {
			sub.Tuples[k] = req.Tuples[idx]
		}
		body, err := json.Marshal(sub)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "encoding sub-batch: %v", err)
			return nil, false
		}
		c.metrics.subbatchesTotal.Add(1)
		wg.Add(1)
		go func(i int, body []byte) {
			defer wg.Done()
			data[i], errs[i] = c.dispatch(ctx, method, path, body, i)
		}(i, body)
	}
	wg.Wait()
	// A non-retryable 4xx from any worker wins (the request itself is
	// bad, lowest worker index for determinism); retryable statuses that
	// survived the whole dispatch budget, like any transport failure,
	// become a 502.
	for _, err := range errs {
		var pt *passthrough
		if errors.As(err, &pt) && !retryableStatus(pt.status) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(pt.status)
			//ermvet:ignore errdrop a failed response write means the client is gone; there is no one to tell
			w.Write(pt.body)
			return nil, false
		}
	}
	for i, err := range errs {
		if err != nil {
			httpError(w, http.StatusBadGateway, "sub-batch for worker %d failed: %v", i, err)
			return nil, false
		}
	}
	return data, true
}

// sameVersion verifies every contributing sub-response was evaluated
// under one rule generation. Mixed generations cannot be merged into a
// response claiming a single rules_version — that is exactly the skew
// the two-phase push exists to prevent — so the batch fails loudly.
func sameVersion(versions []int64, have []bool) (int64, error) {
	version := int64(-1)
	for i, v := range versions {
		if !have[i] {
			continue
		}
		if version == -1 {
			version = v
		} else if v != version {
			return 0, fmt.Errorf("workers answered under different rule generations (%d vs %d); retry after the rule push settles", version, v)
		}
	}
	return version, nil
}

func (c *Coordinator) handleRepair(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	c.metrics.inFlightRepair.Add(1)
	defer c.metrics.inFlightRepair.Add(-1)
	defer func() { c.metrics.observeLatency(time.Since(start)) }()
	if c.closed.Load() {
		httpError(w, http.StatusServiceUnavailable, "coordinator is shutting down")
		return
	}
	var req serve.TupleBatch
	if !c.decodeBatch(w, r, &req) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.requestTimeout())
	defer cancel()
	c.metrics.tuplesSeen.Add(int64(len(req.Tuples)))

	parts := partition(req.Tuples, len(c.workers))
	data, ok := c.fanout(ctx, w, http.MethodPost, serve.PathRepair, req, parts)
	if !ok {
		return
	}

	// Merge in canonical input order: tuple i of the request is tuple k
	// of its worker's sub-batch, where parts[w][k] == i. Fix rows are
	// renumbered from sub-batch coordinates back to batch coordinates.
	resp := serve.RepairResponse{
		Tuples: make([]map[string]string, len(req.Tuples)),
		Fixes:  []serve.FixJSON{},
	}
	versions := make([]int64, len(c.workers))
	have := make([]bool, len(c.workers))
	for i, raw := range data {
		if raw == nil {
			continue
		}
		var sr serve.RepairResponse
		if err := json.Unmarshal(raw, &sr); err != nil {
			httpError(w, http.StatusBadGateway, "decoding worker %d response: %v", i, err)
			return
		}
		if len(sr.Tuples) != len(parts[i]) {
			httpError(w, http.StatusBadGateway, "worker %d answered %d tuples for a %d-tuple sub-batch", i, len(sr.Tuples), len(parts[i]))
			return
		}
		versions[i], have[i] = sr.RulesVersion, true
		for k, idx := range parts[i] {
			resp.Tuples[idx] = sr.Tuples[k]
		}
		for _, f := range sr.Fixes {
			f.Row = parts[i][f.Row]
			resp.Fixes = append(resp.Fixes, f)
		}
		resp.Covered += sr.Covered
		resp.Changed += sr.Changed
	}
	version, err := sameVersion(versions, have)
	if err != nil {
		httpError(w, http.StatusBadGateway, "%v", err)
		return
	}
	resp.RulesVersion = version
	sort.Slice(resp.Fixes, func(i, j int) bool { return resp.Fixes[i].Row < resp.Fixes[j].Row })
	c.metrics.repairsApplied.Add(int64(resp.Changed))
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleValidate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	c.metrics.inFlightValidate.Add(1)
	defer c.metrics.inFlightValidate.Add(-1)
	defer func() { c.metrics.observeLatency(time.Since(start)) }()
	if c.closed.Load() {
		httpError(w, http.StatusServiceUnavailable, "coordinator is shutting down")
		return
	}
	var req serve.TupleBatch
	if !c.decodeBatch(w, r, &req) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.requestTimeout())
	defer cancel()
	c.metrics.tuplesSeen.Add(int64(len(req.Tuples)))

	parts := partition(req.Tuples, len(c.workers))
	data, ok := c.fanout(ctx, w, http.MethodPost, serve.PathValidate, req, parts)
	if !ok {
		return
	}

	resp := serve.ValidateResponse{Results: make([]serve.ValidationJSON, len(req.Tuples))}
	versions := make([]int64, len(c.workers))
	have := make([]bool, len(c.workers))
	for i, raw := range data {
		if raw == nil {
			continue
		}
		var sr serve.ValidateResponse
		if err := json.Unmarshal(raw, &sr); err != nil {
			httpError(w, http.StatusBadGateway, "decoding worker %d response: %v", i, err)
			return
		}
		if len(sr.Results) != len(parts[i]) {
			httpError(w, http.StatusBadGateway, "worker %d answered %d results for a %d-tuple sub-batch", i, len(sr.Results), len(parts[i]))
			return
		}
		versions[i], have[i] = sr.RulesVersion, true
		for k, idx := range parts[i] {
			v := sr.Results[k]
			v.Row = idx
			resp.Results[idx] = v
		}
		resp.Violations += sr.Violations
		resp.Missing += sr.Missing
		resp.Uncovered += sr.Uncovered
	}
	version, err := sameVersion(versions, have)
	if err != nil {
		httpError(w, http.StatusBadGateway, "%v", err)
		return
	}
	resp.RulesVersion = version
	writeJSON(w, http.StatusOK, resp)
}

// handleRulesPut replicates a rule-set generation to the whole fleet in
// two phases. Phase 1 stages the wire-format file on every worker; each
// answers the generation's content hash, which must agree everywhere
// (the hash is computed over the canonical re-export, so agreement
// means every worker parsed the same semantic rule set). Phase 2 tells
// every worker to activate exactly that hash. Any phase-1 failure
// aborts before a single worker has activated, leaving the old
// generation serving everywhere.
func (c *Coordinator) handleRulesPut(w http.ResponseWriter, r *http.Request) {
	if c.closed.Load() {
		httpError(w, http.StatusServiceUnavailable, "coordinator is shutting down")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.maxBody()))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	c.pushMu.Lock()
	defer c.pushMu.Unlock()
	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.requestTimeout())
	defer cancel()

	// Phase 1: stage everywhere. No hedging — a stage must land on the
	// very worker it targets, there is no substitute.
	//ermvet:ignore lockorder pushMu exists to serialize fleet pushes; the wait is bounded by the per-request context timeout above
	staged, err := c.pushAll(ctx, http.MethodPost, serve.PathRulesStage, body)
	if err != nil {
		c.relayPushError(w, "staging rules", err)
		return
	}
	etag, count := "", 0
	for i, raw := range staged {
		var sr serve.StageResponse
		if err := json.Unmarshal(raw, &sr); err != nil {
			httpError(w, http.StatusBadGateway, "decoding worker %d stage response: %v", i, err)
			return
		}
		if i == 0 {
			etag, count = sr.ETag, sr.Count
		} else if sr.ETag != etag {
			httpError(w, http.StatusBadGateway, "workers staged different generations (%s vs %s); no activation was attempted", etag, sr.ETag)
			return
		}
	}

	// Phase 2: activate the agreed generation everywhere.
	actBody, err := json.Marshal(serve.ActivateRequest{ETag: etag})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding activate request: %v", err)
		return
	}
	//ermvet:ignore lockorder pushMu exists to serialize fleet pushes; the wait is bounded by the per-request context timeout above
	activated, err := c.pushAll(ctx, http.MethodPost, serve.PathRulesActivate, actBody)
	if err != nil {
		c.relayPushError(w, "activating rules", err)
		return
	}
	version := int64(0)
	for i, raw := range activated {
		var ar serve.RulesAck
		if err := json.Unmarshal(raw, &ar); err != nil {
			httpError(w, http.StatusBadGateway, "decoding worker %d activate response: %v", i, err)
			return
		}
		c.reg.markAlive(i, ar.ETag, ar.Version)
		if ar.Version > version {
			version = ar.Version
		}
	}
	c.lastETag, c.lastCount = etag, count
	c.generation.Add(1)
	c.metrics.rulePushes.Add(1)
	writeJSON(w, http.StatusOK, serve.RulesAck{Version: version, Count: count, ETag: etag})
}

// handleDataPatch replicates a data delta to the whole fleet. Master
// and input data are replicated, not sharded — every worker holds the
// full relations, which is what lets sub-batches hedge to any peer —
// so the "owning shard" of a delta is every worker: the coordinator
// pushes the same PATCH /v1/data to all of them under the push lock
// (serialized with rule pushes, whose generations a patch also
// advances) and then verifies the fleet converged on one data_version
// and one rules_etag. Divergence means a worker applied the delta to
// different data than its peers — the same skew the two-phase rule
// push exists to prevent — and is reported as a 502 rather than
// papered over.
func (c *Coordinator) handleDataPatch(w http.ResponseWriter, r *http.Request) {
	if c.closed.Load() {
		httpError(w, http.StatusServiceUnavailable, "coordinator is shutting down")
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, c.cfg.maxBody()))
	dec.DisallowUnknownFields()
	var req serve.DataPatchRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if dec.More() {
		httpError(w, http.StatusBadRequest, "bad request body: %v", errors.New("trailing data after JSON body"))
		return
	}
	if len(req.Appends)+len(req.Updates) == 0 {
		httpError(w, http.StatusBadRequest, "empty delta: no appends and no updates")
		return
	}
	body, err := json.Marshal(req)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding patch request: %v", err)
		return
	}
	c.pushMu.Lock()
	defer c.pushMu.Unlock()
	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.requestTimeout())
	defer cancel()
	//ermvet:ignore lockorder pushMu exists to serialize fleet pushes; the wait is bounded by the per-request context timeout above
	raws, err := c.pushAll(ctx, http.MethodPatch, serve.PathData, body)
	if err != nil {
		c.relayPushError(w, "patching data", err)
		return
	}
	var first serve.DataPatchResponse
	for i, raw := range raws {
		var pr serve.DataPatchResponse
		if err := json.Unmarshal(raw, &pr); err != nil {
			httpError(w, http.StatusBadGateway, "decoding worker %d patch response: %v", i, err)
			return
		}
		c.reg.markAlive(i, pr.RulesETag, pr.RulesVersion)
		if i == 0 {
			first = pr
			continue
		}
		if pr.DataVersion != first.DataVersion || pr.RulesETag != first.RulesETag {
			httpError(w, http.StatusBadGateway,
				"workers diverged after the data patch (worker %d: data_version %d, rules_etag %s; worker 0: data_version %d, rules_etag %s)",
				i, pr.DataVersion, pr.RulesETag, first.DataVersion, first.RulesETag)
			return
		}
	}
	c.metrics.dataPatches.Add(1)
	writeJSON(w, http.StatusOK, first)
}

// pushAll sends one body to every worker concurrently (with the
// dispatch path's per-attempt timeout and retry budget, but no
// cross-worker hedging) and returns all responses, or the
// lowest-indexed error.
func (c *Coordinator) pushAll(ctx context.Context, method, path string, body []byte) ([][]byte, error) {
	n := len(c.workers)
	data := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data[i], errs[i] = c.postWithRetry(ctx, i, method, path, body)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("worker %d (%s): %w", i, c.workers[i], err)
		}
	}
	return data, nil
}

// postWithRetry is the single-worker analogue of dispatch: bounded
// retries with backoff on the one target, no failover.
func (c *Coordinator) postWithRetry(ctx context.Context, i int, method, path string, body []byte) ([]byte, error) {
	backoff := c.cfg.retryBackoff()
	var lastErr error
	for attempt := 0; attempt <= c.cfg.retries(); attempt++ {
		if attempt > 0 {
			c.metrics.retriesTotal.Add(1)
			if err := sleepCtx(ctx, backoff); err != nil {
				return nil, err
			}
			backoff *= 2
		}
		data, err := c.tryWorker(ctx, i, method, path, body)
		if err == nil {
			return data, nil
		}
		if pt, ok := err.(*passthrough); ok && !retryableStatus(pt.status) {
			return nil, pt
		}
		lastErr = err
	}
	c.reg.markDead(i, lastErr)
	c.metrics.workerFailures.Add(1)
	return nil, lastErr
}

// relayPushError maps a push failure onto the client: a worker's
// non-retryable 4xx (bad rules file, stale etag) is relayed verbatim;
// anything else — transport failures and retryable statuses that
// outlived the retry budget — is a 502 naming the failing phase.
func (c *Coordinator) relayPushError(w http.ResponseWriter, phase string, err error) {
	var pt *passthrough
	if errors.As(err, &pt) && !retryableStatus(pt.status) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(pt.status)
		//ermvet:ignore errdrop a failed response write means the client is gone; there is no one to tell
		w.Write(pt.body)
		return
	}
	httpError(w, http.StatusBadGateway, "%s: %v", phase, err)
}

// handleRulesGet proxies the active rule set from the first healthy
// worker, preserving the generation headers so clients (and operators
// debugging skew) see exactly what that worker serves.
func (c *Coordinator) handleRulesGet(w http.ResponseWriter, r *http.Request) {
	for i := range c.workers {
		if !c.reg.alive(i) {
			continue
		}
		ctx, cancel := context.WithTimeout(r.Context(), c.cfg.perWorkerTimeout())
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.workers[i]+serve.PathRules, nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := c.client.Do(req)
		if err != nil {
			cancel()
			c.reg.markDead(i, err)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		//ermvet:ignore errdrop nothing to do about a close error after the body is fully read
		resp.Body.Close()
		cancel()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		if v := resp.Header.Get("X-Rules-Version"); v != "" {
			w.Header().Set("X-Rules-Version", v)
		}
		if v := resp.Header.Get("ETag"); v != "" {
			w.Header().Set("ETag", v)
		}
		//ermvet:ignore errdrop a failed response write means the client is gone; there is no one to tell
		w.Write(body)
		return
	}
	httpError(w, http.StatusBadGateway, "no healthy worker to serve the rule set")
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	workers := c.reg.snapshot()
	healthy := 0
	for _, s := range workers {
		if s.Alive {
			healthy++
		}
	}
	skew := c.reg.generationSkew()
	status, code := "ok", http.StatusOK
	switch {
	case c.closed.Load():
		status, code = "shutting_down", http.StatusServiceUnavailable
	case healthy == 0:
		status, code = "unavailable", http.StatusServiceUnavailable
	case healthy < len(workers):
		status = "degraded"
	}
	writeJSON(w, code, map[string]any{
		"status":          status,
		"role":            "coordinator",
		"workers":         workers,
		"workers_total":   len(workers),
		"workers_healthy": healthy,
		"generation_skew": skew,
		"rule_pushes":     c.generation.Load(),
		"uptime_seconds":  int64(time.Since(c.metrics.start).Seconds()),
	})
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	c.metrics.write(w, c.reg.healthyCount(), c.reg.generationSkew(), c.generation.Load())
}
