package cluster

// The suite stands up real worker daemons (internal/serve servers on
// httptest listeners) behind a coordinator and pins the subsystem's
// core contract: whatever the fleet answers is byte-identical to what
// one single-node erminerd holding the whole batch would have answered
// — at worker counts 1, 2 and 4, and with a worker killed mid-batch.
// Health checking is driven explicitly (HealthInterval < 0) so the
// tests are deterministic.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"erminer/internal/core"
	"erminer/internal/measure"
	"erminer/internal/relation"
	"erminer/internal/rule"
	"erminer/internal/rulesio"
	"erminer/internal/schema"
	"erminer/internal/serve"
)

// clusterProblem mirrors the serve suite's district/area → postcode
// fixture. Every worker (and the single-node reference) gets its own
// instance: replicas share nothing in-process, exactly like separate
// daemons.
func clusterProblem(t *testing.T) *core.Problem {
	t.Helper()
	pool := relation.NewPool()
	attrs := []relation.Attribute{
		{Name: "district", Domain: "d"},
		{Name: "area", Domain: "a"},
		{Name: "postcode", Domain: "p"},
	}
	in := relation.NewSchema(attrs...)
	ms := relation.NewSchema(attrs...)
	input := relation.New(in, pool)
	master := relation.New(ms, pool)
	postcode := map[string]string{"hz": "31200", "bd": "45000", "cz": "52000"}
	for _, d := range []string{"hz", "bd", "cz"} {
		for _, a := range []string{"010", "020", "030"} {
			master.AppendRow([]string{d, a, postcode[d]})
			input.AppendRow([]string{d, a, postcode[d]})
		}
	}
	input.AppendRow([]string{"hz", "020", ""})
	match, err := schema.FromNames(in, ms, map[string]string{"district": "district", "area": "area"})
	if err != nil {
		t.Fatal(err)
	}
	return &core.Problem{
		Input: input, Master: master, Match: match,
		Y: 2, Ym: 2, SupportThreshold: 2, TopK: 10,
	}
}

func districtRule() core.MinedRule {
	return core.MinedRule{
		Rule:     rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 2, 2, nil),
		Measures: measure.Measures{Support: 9, Certainty: 1, Quality: 1, Utility: 9.65},
	}
}

// districtAreaRule is a second, distinct generation for push tests.
func districtAreaRule() core.MinedRule {
	return core.MinedRule{
		Rule:     rule.New([]rule.AttrPair{{Input: 0, Master: 0}, {Input: 1, Master: 1}}, 2, 2, nil),
		Measures: measure.Measures{Support: 9, Certainty: 1, Quality: 1, Utility: 9.0},
	}
}

// newWorker boots one worker daemon on a live listener, optionally
// wrapped (chaos / fault injection).
func newWorker(t *testing.T, wrap func(http.Handler) http.Handler) (*serve.Server, *httptest.Server) {
	t.Helper()
	s, err := serve.New(clusterProblem(t), []core.MinedRule{districtRule()}, serve.Config{Role: "worker"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		done := make(chan struct{})
		time.AfterFunc(10*time.Second, func() { close(done) })
		if err := s.Shutdown(done); err != nil {
			t.Errorf("worker shutdown: %v", err)
		}
	})
	var h http.Handler = s
	if wrap != nil {
		h = wrap(s)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return s, ts
}

func newFleet(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		_, ts := newWorker(t, nil)
		urls[i] = ts.URL
	}
	return urls
}

func newCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = -1 // tests drive checkAll explicitly
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		done := make(chan struct{})
		time.AfterFunc(10*time.Second, func() { close(done) })
		if err := c.Shutdown(done); err != nil {
			t.Errorf("coordinator shutdown: %v", err)
		}
	})
	return c
}

func do(h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decode(t *testing.T, w *httptest.ResponseRecorder, v any) {
	t.Helper()
	if err := json.Unmarshal(w.Body.Bytes(), v); err != nil {
		t.Fatalf("decoding response %q: %v", w.Body.String(), err)
	}
}

// byteBatch is a 12-tuple batch mixing repairs, violations, missing
// values, an uncovered district, an empty tuple and duplicates, so the
// partition spreads real work across every worker.
const byteBatch = `{"tuples": [
	{"district": "hz", "area": "010", "postcode": "99999"},
	{"district": "bd", "area": "020"},
	{"district": "zz", "area": "010", "postcode": "1"},
	{"district": "cz", "area": "030", "postcode": "52000"},
	{"district": "hz", "area": "020", "postcode": ""},
	{"district": "bd", "area": "010", "postcode": "45000"},
	{},
	{"district": "cz", "area": "010", "postcode": "11111"},
	{"district": "hz", "area": "030"},
	{"district": "bd", "area": "030", "postcode": "22222"},
	{"district": "cz", "area": "020"},
	{"district": "hz", "area": "010", "postcode": "99999"}
]}`

func variants(base string) map[string]string {
	return map[string]string{
		"plain":        base,
		"explain":      strings.Replace(base, `{"tuples"`, `{"explain": true, "tuples"`, 1),
		"only_missing": strings.Replace(base, `{"tuples"`, `{"only_missing": true, "tuples"`, 1),
	}
}

// TestByteIdenticalResponses is the subsystem's acceptance test: for
// worker counts 1, 2 and 4, the coordinator's merged /v1/repair and
// /v1/validate responses are byte-for-byte what a single-node daemon
// answers for the same batch.
func TestByteIdenticalResponses(t *testing.T) {
	single, err := serve.New(clusterProblem(t), []core.MinedRule{districtRule()}, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		done := make(chan struct{})
		time.AfterFunc(10*time.Second, func() { close(done) })
		//ermvet:ignore errdrop test cleanup; Shutdown errors surface through the failing test itself
		single.Shutdown(done)
	}()

	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			c := newCoordinator(t, Config{Workers: newFleet(t, workers)})
			for _, path := range []string{serve.PathRepair, serve.PathValidate} {
				for name, body := range variants(byteBatch) {
					want := do(single, "POST", path, body)
					got := do(c, "POST", path, body)
					if want.Code != http.StatusOK {
						t.Fatalf("%s %s: single-node answered %d: %s", path, name, want.Code, want.Body.String())
					}
					if got.Code != want.Code {
						t.Fatalf("%s %s: coordinator answered %d, single-node %d", path, name, got.Code, want.Code)
					}
					if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
						t.Errorf("%s %s: merged response is not byte-identical to single-node\ncoordinator: %s\nsingle-node: %s",
							path, name, got.Body.String(), want.Body.String())
					}
				}
			}
		})
	}
}

// chaosHandler fronts a worker and can be "killed": once dead, every
// connection is aborted mid-response, which is what a SIGKILLed worker
// looks like from the coordinator (reset/EOF, then connection refused).
// The kill trigger is one-shot so a revived worker stays up.
type chaosHandler struct {
	inner  http.Handler
	dead   atomic.Bool
	armed  atomic.Bool
	killOn func(*http.Request) bool
	served atomic.Int64
}

func (h *chaosHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	if h.killOn != nil && h.killOn(r) && h.armed.CompareAndSwap(true, false) {
		h.dead.Store(true)
		panic(http.ErrAbortHandler)
	}
	h.served.Add(1)
	h.inner.ServeHTTP(w, r)
}

// TestChaosWorkerKillMidBatch kills one of two workers on its first
// repair sub-batch. The coordinator must burn the pinned worker's retry
// budget, hedge the sub-batch to the survivor, and still produce the
// byte-identical single-node response; the registry and metrics must
// show the casualty. Reviving the worker and running a health round
// restores full fan-out.
func TestChaosWorkerKillMidBatch(t *testing.T) {
	single, err := serve.New(clusterProblem(t), []core.MinedRule{districtRule()}, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		done := make(chan struct{})
		time.AfterFunc(10*time.Second, func() { close(done) })
		//ermvet:ignore errdrop test cleanup; Shutdown errors surface through the failing test itself
		single.Shutdown(done)
	}()

	chaos := &chaosHandler{killOn: func(r *http.Request) bool {
		return r.Method == http.MethodPost && r.URL.Path == serve.PathRepair
	}}
	chaos.armed.Store(true)
	_, ts0 := newWorker(t, nil)
	_, ts1 := newWorker(t, func(inner http.Handler) http.Handler {
		chaos.inner = inner
		return chaos
	})
	c := newCoordinator(t, Config{
		Workers:      []string{ts0.URL, ts1.URL},
		Retries:      1,
		RetryBackoff: 2 * time.Millisecond,
	})

	want := do(single, "POST", serve.PathRepair, byteBatch)
	got := do(c, "POST", serve.PathRepair, byteBatch)
	if got.Code != http.StatusOK {
		t.Fatalf("repair with a killed worker answered %d: %s", got.Code, got.Body.String())
	}
	if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
		t.Errorf("merged response after mid-batch worker kill is not byte-identical\ncoordinator: %s\nsingle-node: %s",
			got.Body.String(), want.Body.String())
	}
	if n := c.metrics.redispatches.Load(); n < 1 {
		t.Errorf("redispatches = %d, want >= 1 (the killed worker's sub-batch must hedge)", n)
	}
	if n := c.metrics.retriesTotal.Load(); n < 1 {
		t.Errorf("retriesTotal = %d, want >= 1 (the pinned worker gets its retry budget first)", n)
	}
	if c.reg.alive(1) {
		t.Error("worker 1 still marked alive after exhausting its dispatch budget")
	}

	var health struct {
		Status         string `json:"status"`
		WorkersHealthy int    `json:"workers_healthy"`
	}
	w := do(c, "GET", serve.PathHealthz, "")
	decode(t, w, &health)
	if health.Status != "degraded" || health.WorkersHealthy != 1 {
		t.Errorf("healthz after kill = %+v, want degraded with 1 healthy worker", health)
	}

	// Revive the worker; the next health round must put it back in the
	// rotation and fan-out must resume byte-identically.
	chaos.dead.Store(false)
	c.checkAll()
	if !c.reg.alive(1) {
		t.Fatal("worker 1 not marked alive after revival health round")
	}
	before := chaos.served.Load()
	got = do(c, "POST", serve.PathRepair, byteBatch)
	if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
		t.Error("merged response after worker revival is not byte-identical to single-node")
	}
	if chaos.served.Load() == before {
		t.Error("revived worker served no sub-batch; fan-out did not resume")
	}
}

// TestTwoPhaseRulePush pins the replication contract: one PUT on the
// coordinator stages and activates the same generation on every worker,
// leaving zero generation skew, and the fleet then serves under the new
// generation byte-identically to a single node holding it.
func TestTwoPhaseRulePush(t *testing.T) {
	urls := newFleet(t, 2)
	c := newCoordinator(t, Config{Workers: urls, RetryBackoff: 2 * time.Millisecond})

	data, err := rulesio.Export(clusterProblem(t), []core.MinedRule{districtRule(), districtAreaRule()})
	if err != nil {
		t.Fatal(err)
	}
	w := do(c, "PUT", serve.PathRules, string(data))
	if w.Code != http.StatusOK {
		t.Fatalf("PUT /v1/rules: %d: %s", w.Code, w.Body.String())
	}
	var put struct {
		Version int64  `json:"version"`
		Count   int    `json:"count"`
		ETag    string `json:"etag"`
	}
	decode(t, w, &put)
	if put.Count != 2 || put.Version != 2 || !strings.HasPrefix(put.ETag, "sha256:") {
		t.Fatalf("push answered %+v, want count=2 version=2 and a sha256 etag", put)
	}

	// Every worker must now serve exactly that generation.
	for i, u := range urls {
		resp, err := http.Get(u + serve.PathRules)
		if err != nil {
			t.Fatal(err)
		}
		etag := resp.Header.Get("ETag")
		//ermvet:ignore errdrop test teardown of a fully-read response body
		resp.Body.Close()
		if etag != `"`+put.ETag+`"` {
			t.Errorf("worker %d serves ETag %s, want %q", i, etag, put.ETag)
		}
	}
	c.checkAll()
	if skew := c.reg.generationSkew(); skew != 1 {
		t.Errorf("generation skew after push = %d, want 1", skew)
	}

	// The fleet under the new generation still matches a single node
	// under the same generation.
	single, err := serve.New(clusterProblem(t), []core.MinedRule{districtRule()}, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		done := make(chan struct{})
		time.AfterFunc(10*time.Second, func() { close(done) })
		//ermvet:ignore errdrop test cleanup; Shutdown errors surface through the failing test itself
		single.Shutdown(done)
	}()
	if _, _, err := single.SwapRules(data); err != nil {
		t.Fatal(err)
	}
	want := do(single, "POST", serve.PathRepair, byteBatch)
	got := do(c, "POST", serve.PathRepair, byteBatch)
	if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
		t.Errorf("post-push merged response is not byte-identical\ncoordinator: %s\nsingle-node: %s",
			got.Body.String(), want.Body.String())
	}
}

// TestStageFailureAbortsPush wedges phase one on one worker and checks
// the push fails without ANY worker activating: the healthy worker that
// staged successfully must keep serving the old generation.
func TestStageFailureAbortsPush(t *testing.T) {
	_, ts0 := newWorker(t, nil)
	_, ts1 := newWorker(t, func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == serve.PathRulesStage {
				http.Error(w, `{"error":"disk full"}`, http.StatusServiceUnavailable)
				return
			}
			inner.ServeHTTP(w, r)
		})
	})
	c := newCoordinator(t, Config{
		Workers:      []string{ts0.URL, ts1.URL},
		Retries:      1,
		RetryBackoff: 2 * time.Millisecond,
	})

	resp, err := http.Get(ts0.URL + serve.PathRules)
	if err != nil {
		t.Fatal(err)
	}
	oldETag := resp.Header.Get("ETag")
	//ermvet:ignore errdrop test teardown of a fully-read response body
	resp.Body.Close()

	data, err := rulesio.Export(clusterProblem(t), []core.MinedRule{districtRule(), districtAreaRule()})
	if err != nil {
		t.Fatal(err)
	}
	w := do(c, "PUT", serve.PathRules, string(data))
	if w.Code != http.StatusBadGateway {
		t.Fatalf("PUT with a wedged stage answered %d, want 502: %s", w.Code, w.Body.String())
	}
	if n := c.metrics.rulePushes.Load(); n != 0 {
		t.Errorf("rulePushes = %d after an aborted push, want 0", n)
	}

	resp, err = http.Get(ts0.URL + serve.PathRules)
	if err != nil {
		t.Fatal(err)
	}
	newETag := resp.Header.Get("ETag")
	//ermvet:ignore errdrop test teardown of a fully-read response body
	resp.Body.Close()
	if newETag != oldETag {
		t.Errorf("healthy worker's generation moved from %s to %s despite the aborted push", oldETag, newETag)
	}
}

// TestBadRulesFileRelays400 pins the passthrough path: a rules file the
// workers reject 400s straight through the coordinator, and nothing
// activates.
func TestBadRulesFileRelays400(t *testing.T) {
	c := newCoordinator(t, Config{Workers: newFleet(t, 2), RetryBackoff: 2 * time.Millisecond})
	w := do(c, "PUT", serve.PathRules, `{"not": "a rules file"}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("PUT with garbage answered %d, want the workers' 400 relayed: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "error") {
		t.Errorf("relayed 400 body %q is not the worker's error shape", w.Body.String())
	}
}

// TestGenerationSkewDetection drives one worker's generation ahead
// behind the coordinator's back and checks the health round reports the
// skew, and that a mixed-generation batch fails loudly rather than
// merging rows evaluated under different rule sets.
func TestGenerationSkewDetection(t *testing.T) {
	urls := newFleet(t, 2)
	c := newCoordinator(t, Config{Workers: urls, Retries: -1, RetryBackoff: 2 * time.Millisecond})
	c.checkAll()
	if skew := c.reg.generationSkew(); skew != 1 {
		t.Fatalf("initial generation skew = %d, want 1", skew)
	}

	data, err := rulesio.Export(clusterProblem(t), []core.MinedRule{districtRule(), districtAreaRule()})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, urls[1]+serve.PathRules, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	//ermvet:ignore errdrop test teardown of a fully-read response body
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct worker push answered %d", resp.StatusCode)
	}

	c.checkAll()
	if skew := c.reg.generationSkew(); skew != 2 {
		t.Errorf("generation skew after side push = %d, want 2", skew)
	}
	var health struct {
		GenerationSkew int `json:"generation_skew"`
	}
	decode(t, do(c, "GET", serve.PathHealthz, ""), &health)
	if health.GenerationSkew != 2 {
		t.Errorf("healthz generation_skew = %d, want 2", health.GenerationSkew)
	}
	if !strings.Contains(do(c, "GET", serve.PathMetrics, "").Body.String(), "ermcluster_generation_skew 2") {
		t.Error("metrics missing ermcluster_generation_skew 2")
	}

	// A batch whose sub-batches land on both workers now mixes rule
	// generations; the merge must refuse.
	w := do(c, "POST", serve.PathRepair, byteBatch)
	if w.Code != http.StatusBadGateway {
		t.Errorf("mixed-generation batch answered %d, want 502: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "different rule generations") {
		t.Errorf("mixed-generation error body %q does not name the cause", w.Body.String())
	}
}

// TestPartitionDeterminism pins the shard function: stable across calls
// (map iteration order must not leak in), full coverage, and sub-batch
// relative order preserving input order.
func TestPartitionDeterminism(t *testing.T) {
	tuples := make([]map[string]string, 50)
	for i := range tuples {
		tuples[i] = map[string]string{
			"district": fmt.Sprintf("d%d", i%7),
			"area":     fmt.Sprintf("a%d", i%11),
			"postcode": fmt.Sprintf("%d", i),
		}
	}
	for _, n := range []int{1, 2, 4, 7} {
		first := partition(tuples, n)
		for round := 0; round < 5; round++ {
			again := partition(tuples, n)
			for w := range first {
				if fmt.Sprint(again[w]) != fmt.Sprint(first[w]) {
					t.Fatalf("n=%d: partition is not deterministic: %v vs %v", n, first[w], again[w])
				}
			}
		}
		seen := make(map[int]bool)
		for _, part := range first {
			last := -1
			for _, idx := range part {
				if idx <= last {
					t.Fatalf("n=%d: sub-batch %v does not preserve input order", n, part)
				}
				last = idx
				if seen[idx] {
					t.Fatalf("n=%d: tuple %d assigned twice", n, idx)
				}
				seen[idx] = true
			}
		}
		if len(seen) != len(tuples) {
			t.Fatalf("n=%d: partition covered %d of %d tuples", n, len(seen), len(tuples))
		}
	}
}

// TestCoordinatorRequestValidation pins the coordinator-side 400s,
// which must be indistinguishable from a worker's.
func TestCoordinatorRequestValidation(t *testing.T) {
	c := newCoordinator(t, Config{Workers: newFleet(t, 1), MaxBatch: 2})
	for _, tc := range []struct {
		body, wantErr string
	}{
		{`{"tuples": []}`, "empty tuple batch"},
		{`{"tuples": [{}, {}, {}]}`, "batch of 3 tuples exceeds the 2 limit"},
		{`{"tuples": [{}], "bogus": 1}`, "bad request body"},
		{`not json`, "bad request body"},
	} {
		w := do(c, "POST", serve.PathRepair, tc.body)
		if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), tc.wantErr) {
			t.Errorf("body %q answered %d %q, want 400 containing %q", tc.body, w.Code, w.Body.String(), tc.wantErr)
		}
	}
}

func TestNewRejectsBadFleets(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with no workers succeeded")
	}
	if _, err := New(Config{Workers: []string{"not a url"}, HealthInterval: -1}); err == nil {
		t.Error("New with a relative worker URL succeeded")
	}
}

// TestRulesGetProxies checks GET /v1/rules relays a healthy worker's
// body and generation headers.
func TestRulesGetProxies(t *testing.T) {
	urls := newFleet(t, 2)
	c := newCoordinator(t, Config{Workers: urls})
	resp, err := http.Get(urls[0] + serve.PathRules)
	if err != nil {
		t.Fatal(err)
	}
	var wantBody bytes.Buffer
	if _, err := wantBody.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	wantETag := resp.Header.Get("ETag")
	//ermvet:ignore errdrop test teardown of a fully-read response body
	resp.Body.Close()

	w := do(c, "GET", serve.PathRules, "")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /v1/rules: %d: %s", w.Code, w.Body.String())
	}
	if !bytes.Equal(w.Body.Bytes(), wantBody.Bytes()) {
		t.Error("proxied rule set differs from the worker's")
	}
	if w.Header().Get("ETag") != wantETag {
		t.Errorf("proxied ETag %q, want %q", w.Header().Get("ETag"), wantETag)
	}
}

// TestShutdownDrains checks Shutdown stops the health loop and flips
// the API to 503.
func TestShutdownDrains(t *testing.T) {
	c, err := New(Config{Workers: newFleet(t, 1), HealthInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	time.AfterFunc(10*time.Second, func() { close(done) })
	if err := c.Shutdown(done); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if w := do(c, "POST", serve.PathRepair, byteBatch); w.Code != http.StatusServiceUnavailable {
		t.Errorf("repair after Shutdown answered %d, want 503", w.Code)
	}
	var health struct {
		Status string `json:"status"`
	}
	w := do(c, "GET", serve.PathHealthz, "")
	decode(t, w, &health)
	if w.Code != http.StatusServiceUnavailable || health.Status != "shutting_down" {
		t.Errorf("healthz after Shutdown = %d %q, want 503 shutting_down", w.Code, health.Status)
	}
	// Second Shutdown is a no-op, not a double-close panic.
	if err := c.Shutdown(done); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

// TestMetricsShape scrapes the coordinator after traffic and checks the
// ermcluster_ surface is present and counting.
func TestMetricsShape(t *testing.T) {
	c := newCoordinator(t, Config{Workers: newFleet(t, 2)})
	do(c, "POST", serve.PathRepair, byteBatch)
	do(c, "POST", serve.PathValidate, byteBatch)
	body := do(c, "GET", serve.PathMetrics, "").Body.String()
	for _, want := range []string{
		"ermcluster_requests_total ",
		"ermcluster_requests_in_flight_repair 0",
		"ermcluster_requests_in_flight_validate 0",
		"ermcluster_tuples_total 24",
		"ermcluster_workers_total 2",
		"ermcluster_workers_healthy 2",
		"ermcluster_subbatches_total ",
		"ermcluster_redispatches_total 0",
		"ermcluster_rule_pushes_total 0",
		"ermcluster_repair_latency_count 2",
		"ermcluster_repair_latency_p50_ms ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}
