package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"erminer/internal/serve"
)

// WorkerStatus is one worker's last observed health, as reported by the
// coordinator's /healthz.
type WorkerStatus struct {
	URL          string `json:"url"`
	Alive        bool   `json:"alive"`
	RulesETag    string `json:"rules_etag,omitempty"`
	RulesVersion int64  `json:"rules_version"`
	LastError    string `json:"last_error,omitempty"`
}

// registry tracks per-worker liveness and rule-generation identity. It
// is written by the health checker and by dispatch failures, read by
// the fanout path (to pick hedge targets) and by /healthz and /metrics.
type registry struct {
	mu     sync.Mutex
	states []WorkerStatus // guarded by mu
}

// newRegistry starts every worker optimistically alive so the first
// request does not stall behind a health-check round; a dead worker is
// discovered by its first failed dispatch at the latest.
func newRegistry(workers []string) *registry {
	states := make([]WorkerStatus, len(workers))
	for i, w := range workers {
		states[i] = WorkerStatus{URL: w, Alive: true}
	}
	return &registry{states: states}
}

func (r *registry) snapshot() []WorkerStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerStatus, len(r.states))
	copy(out, r.states)
	return out
}

func (r *registry) markAlive(i int, etag string, version int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.states[i] = WorkerStatus{URL: r.states[i].URL, Alive: true, RulesETag: etag, RulesVersion: version}
}

func (r *registry) markDead(i int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.states[i].Alive = false
	if err != nil {
		r.states[i].LastError = err.Error()
	}
}

func (r *registry) alive(i int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.states[i].Alive
}

func (r *registry) healthyCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, s := range r.states {
		if s.Alive {
			n++
		}
	}
	return n
}

// generationSkew reports how many distinct non-empty rule generations
// the live part of the fleet is running; anything above 1 means a rule
// push is in flight or has partially failed. Dead workers are excluded:
// they will restage on recovery (or be replaced), and counting their
// stale generation would hold the skew alarm up for as long as the
// outage lasts.
func (r *registry) generationSkew() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	distinct := 0
	for i, s := range r.states {
		if !s.Alive || s.RulesETag == "" {
			continue
		}
		dup := false
		for _, prev := range r.states[:i] {
			if prev.Alive && prev.RulesETag == s.RulesETag {
				dup = true
				break
			}
		}
		if !dup {
			distinct++
		}
	}
	return distinct
}

// checkAll probes every worker's /healthz once, sequentially (the fleet
// is small and the probe timeout short; one slow worker delaying the
// others' freshness by a probe period is acceptable). The background
// loop calls it on a ticker; tests call it directly.
func (c *Coordinator) checkAll() {
	for i := range c.workers {
		c.checkWorker(i)
	}
	c.metrics.healthChecks.Add(1)
}

func (c *Coordinator) checkWorker(i int) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.perWorkerTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.workers[i]+serve.PathHealthz, nil)
	if err != nil {
		c.reg.markDead(i, err)
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.reg.markDead(i, err)
		return
	}
	//ermvet:ignore errdrop nothing to do about a close error on a drained health-check body
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		c.reg.markDead(i, err)
		return
	}
	// The worker's full wire shape is decoded (not a local projection):
	// json.Unmarshal stays loose about extra fields, so a worker a minor
	// version ahead still health-checks.
	var h serve.HealthResponse
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &h) != nil || h.Status != "ok" {
		c.reg.markDead(i, fmt.Errorf("healthz answered HTTP %d status %q", resp.StatusCode, h.Status))
		return
	}
	c.reg.markAlive(i, h.RulesETag, h.RulesVersion)
}
