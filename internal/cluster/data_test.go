package cluster

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"erminer/internal/serve"
)

// TestDataPatchReplicates pins the replicated-data contract: a PATCH
// /v1/data against the coordinator lands on every worker, the fleet
// converges on one data version and one rule generation, and repairs
// routed anywhere in the fleet see the appended master rows.
func TestDataPatchReplicates(t *testing.T) {
	c := newCoordinator(t, Config{Workers: newFleet(t, 3)})

	w := do(c, "PATCH", serve.PathData, `{"target": "master", "appends": [
		{"district": "xy", "area": "010", "postcode": "77777"},
		{"district": "xy", "area": "020", "postcode": "77777"},
		{"district": "xy", "area": "030", "postcode": "77777"}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("coordinator PATCH /v1/data: status %d: %s", w.Code, w.Body)
	}
	var pr serve.DataPatchResponse
	decode(t, w, &pr)
	if pr.AppendedRows != 3 || pr.Rows != 12 || pr.Revalidated != 1 || pr.Dropped != 0 {
		t.Fatalf("patch response = %+v", pr)
	}
	if got := c.metrics.dataPatches.Load(); got != 1 {
		t.Errorf("dataPatches metric = %d, want 1", got)
	}

	// Enough tuples that the batch splits across several workers: each
	// sub-batch must repair from its own replica's patched index.
	body := `{"tuples": [
		{"district": "xy", "area": "010"},
		{"district": "xy", "area": "020"},
		{"district": "xy", "area": "030"},
		{"district": "xy", "area": "010"},
		{"district": "xy", "area": "020"},
		{"district": "xy", "area": "030"}]}`
	var rr serve.RepairResponse
	decode(t, do(c, "POST", serve.PathRepair, body), &rr)
	if len(rr.Fixes) != 6 {
		t.Fatalf("repairs from patched replicas: %+v", rr.Fixes)
	}
	for _, f := range rr.Fixes {
		if f.New != "77777" {
			t.Fatalf("fix %+v, want postcode 77777", f)
		}
	}
}

// TestDataPatchDivergenceDetected patches one worker behind the
// coordinator's back, then pushes a fleet-wide patch: the workers now
// disagree on the data version and the coordinator must answer 502
// rather than report a generation the fleet does not share.
func TestDataPatchDivergenceDetected(t *testing.T) {
	_, ts0 := newWorker(t, nil)
	_, ts1 := newWorker(t, nil)
	c := newCoordinator(t, Config{Workers: []string{ts0.URL, ts1.URL}})

	side := `{"target": "input", "updates": [{"row": 0, "attr": "area", "value": "090"}]}`
	req, err := http.NewRequest(http.MethodPatch, ts0.URL+serve.PathData, strings.NewReader(side))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("side-channel patch of worker 0: status %d", resp.StatusCode)
	}

	w := do(c, "PATCH", serve.PathData, `{"target": "input", "updates": [{"row": 1, "attr": "area", "value": "091"}]}`)
	if w.Code != http.StatusBadGateway {
		t.Fatalf("patch over a diverged fleet: status %d, want 502 (%s)", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "diverged") {
		t.Errorf("divergence error body = %s", w.Body)
	}
}

// TestDataPatchRejectsBadRequests: malformed fleet patches die at the
// coordinator without touching any worker.
func TestDataPatchRejectsBadRequests(t *testing.T) {
	s, ts := newWorker(t, nil)
	c := newCoordinator(t, Config{Workers: []string{ts.URL}})

	// A no-op patch reads the worker's current data version without
	// bumping it: the probe for "nothing reached the worker".
	dataVersion := func() int64 {
		var pr serve.DataPatchResponse
		decode(t, do(s, "PATCH", serve.PathData,
			`{"target": "input", "updates": [{"row": 0, "attr": "district", "value": "hz"}]}`), &pr)
		return pr.DataVersion
	}

	before := dataVersion()
	for name, body := range map[string]string{
		"empty delta":   `{"target": "input"}`,
		"unknown field": `{"target": "input", "rows": []}`,
		"bad json":      `{"target": `,
		"trailing data": `{"target": "input", "updates": [{"row": 0, "attr": "area", "value": "x"}]} garbage`,
	} {
		if w := do(c, "PATCH", serve.PathData, body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, w.Code, w.Body)
		}
	}
	if got := dataVersion(); got != before {
		t.Errorf("a rejected fleet patch reached the worker: version %d -> %d", before, got)
	}
}

// TestDataPatchClosedCoordinator: a draining coordinator refuses new
// data mutations like it refuses rule pushes.
func TestDataPatchClosedCoordinator(t *testing.T) {
	c := newCoordinator(t, Config{Workers: newFleet(t, 1)})
	done := make(chan struct{})
	time.AfterFunc(5*time.Second, func() { close(done) })
	if err := c.Shutdown(done); err != nil {
		t.Fatal(err)
	}
	w := do(c, "PATCH", serve.PathData, `{"target": "input", "updates": [{"row": 0, "attr": "area", "value": "x"}]}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("patch on a closed coordinator: status %d, want 503", w.Code)
	}
}
