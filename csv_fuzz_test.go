package erminer

import (
	"bytes"
	"testing"
)

// FuzzReadCSV drives the CSV ingestion path — parsing plus the two raw
// heuristics that consume its output before any relation exists
// (continuous-column detection and value-overlap schema matching) —
// with arbitrary bytes. Anything short of a clean error is a bug.
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("a,b,y\n1,x,yes\n2,x,no\n"))
	f.Add([]byte("a,b,y\n"))
	f.Add([]byte(`name,"quoted,col"` + "\n" + `"v,1",w` + "\n"))
	f.Add([]byte("a;b\n1;2\n"))
	f.Add([]byte("a,b\n1\n"))
	f.Add([]byte(""))
	f.Add([]byte("\xff\xfe,\x00\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		header, rows, err := readCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(header) == 0 {
			t.Fatalf("readCSV returned no error and an empty header")
		}
		for _, row := range rows {
			if len(row) != len(header) {
				t.Fatalf("ragged row accepted: %d fields, header has %d", len(row), len(header))
			}
		}
		for i := range header {
			looksContinuous(column(rows, i))
		}
		inferPairsByValues(header, rows, header, rows)
	})
}
