// Benchmarks regenerating every table and figure of the paper's
// evaluation section (§V), one benchmark per artifact, plus ablation
// benchmarks for the design decisions listed in DESIGN.md §4.
//
// The per-artifact benchmarks run the same drivers as cmd/experiments at
// the bench scale (10% of the paper's data sizes) and print the rendered
// rows on their first iteration, so `go test -bench=. -benchmem` leaves
// the full reproduction in its output.
package erminer_test

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"erminer/internal/core"
	"erminer/internal/datagen"
	"erminer/internal/enuminer"
	"erminer/internal/errgen"
	"erminer/internal/experiments"
	"erminer/internal/mdp"
	"erminer/internal/measure"
	"erminer/internal/nn"
	"erminer/internal/rlminer"
	"erminer/internal/rule"
)

var benchPrintOnce sync.Map

// benchExperiment runs one evaluation-section driver per iteration,
// printing its rendered output the first time only.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		var out io.Writer = io.Discard
		if _, printed := benchPrintOnce.LoadOrStore(name, true); !printed {
			out = os.Stdout
			fmt.Fprintf(out, "\n=== %s (bench scale) ===\n", name)
		}
		cfg := &experiments.Config{
			Scale:   experiments.ScaleBench,
			Repeats: 1,
			Seed:    1,
			Out:     out,
		}
		if err := cfg.Run(name); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableI(b *testing.B)   { benchExperiment(b, "tableI") }
func BenchmarkTableII(b *testing.B)  { benchExperiment(b, "tableII") }
func BenchmarkTableIII(b *testing.B) { benchExperiment(b, "tableIII") }
func BenchmarkFigure2(b *testing.B)  { benchExperiment(b, "figure2") }
func BenchmarkFigure6(b *testing.B)  { benchExperiment(b, "figure6") }
func BenchmarkFigure7(b *testing.B)  { benchExperiment(b, "figure7") }
func BenchmarkFigure8(b *testing.B)  { benchExperiment(b, "figure8") }
func BenchmarkFigure9(b *testing.B)  { benchExperiment(b, "figure9") }
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "figure10") }
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, "figure11") }
func BenchmarkFigure12(b *testing.B) { benchExperiment(b, "figure12") }

// benchProblem builds a mid-size covid instance for the micro-benchmarks.
func benchProblem(b *testing.B) *core.Problem {
	b.Helper()
	ds, err := datagen.Covid().Build(datagen.DefaultSpec(2500, 1824, 1))
	if err != nil {
		b.Fatal(err)
	}
	errgen.Inject(ds.Input, errgen.Config{Rate: 0.1, Rng: rand.New(rand.NewSource(2))})
	return &core.Problem{
		Input:            ds.Input,
		Master:           ds.Master,
		Match:            ds.Match,
		Y:                ds.Y,
		Ym:               ds.Ym,
		SupportThreshold: ds.SupportThreshold,
		TopK:             20,
	}
}

func benchRule(p *core.Problem) *rule.Rule {
	// (city, confirmed_date) → infection_case: the paper's φ₁ shape.
	rs := p.Input.Schema()
	ms := p.Master.Schema()
	return rule.New([]rule.AttrPair{
		{Input: rs.MustIndex("city"), Master: ms.MustIndex("city")},
		{Input: rs.MustIndex("confirmed_date"), Master: ms.MustIndex("confirmed_date")},
	}, p.Y, p.Ym, nil)
}

// BenchmarkEvaluate measures one full rule evaluation with a warm master
// index (DESIGN.md decision 2: group-based measure evaluation), on the
// default columnar engine and the retained scalar reference path
// (DESIGN.md decision 16). The columnar/warm case is the hot path of
// both miners and the serving layer; with the cover buffer recycled it
// must report 0 allocs/op — CI gates on it via TestEvaluateZeroAlloc
// and scripts/bench.sh records it in BENCH_hotpath.json.
func BenchmarkEvaluate(b *testing.B) {
	p := benchProblem(b)
	r := benchRule(p)
	for _, mode := range []struct {
		name   string
		scalar bool
	}{{"columnar", false}, {"scalar", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p.ScalarEval = mode.scalar
			defer func() { p.ScalarEval = false }()
			ev := p.NewEvaluator()
			ms := ev.Evaluate(r, nil) // warm index, postings, projection
			ev.ReleaseCover(ms.PatternCover)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ms := ev.Evaluate(r, nil)
				ev.ReleaseCover(ms.PatternCover)
			}
		})
	}
}

// BenchmarkEvaluateColdIndex measures evaluation including the master
// index build (the cache-miss path).
func BenchmarkEvaluateColdIndex(b *testing.B) {
	p := benchProblem(b)
	r := benchRule(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := p.NewEvaluator()
		ev.Evaluate(r, nil)
	}
}

// BenchmarkCoverIndex measures child evaluation over the parent's
// pattern cover (Alg. 4 lines 9-10) against a full-relation scan
// (DESIGN.md decision 3).
func BenchmarkCoverIndex(b *testing.B) {
	p := benchProblem(b)
	ev := p.NewEvaluator()
	parent := benchRule(p)
	ov := p.Input.Schema().MustIndex("overseas")
	no, ok := p.Input.Dict(ov).Lookup("No")
	if !ok {
		b.Fatal("No not interned")
	}
	withGuard := parent.WithCondition(rule.Eq(ov, no))
	guardCover := ev.Evaluate(rule.New(nil, p.Y, p.Ym, withGuard.Pattern), nil).PatternCover
	b.Run("subspace", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ev.ReleaseCover(ev.Evaluate(withGuard, guardCover).PatternCover)
		}
	})
	b.Run("full-scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ev.ReleaseCover(ev.Evaluate(withGuard, nil).PatternCover)
		}
	})
}

// BenchmarkRewardCache measures an environment step on a rule whose
// reward is cached (R_Σ, DESIGN.md decision 7) versus recomputed.
func BenchmarkRewardCache(b *testing.B) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"cached", false}, {"disabled", true}} {
		b.Run(tc.name, func(b *testing.B) {
			p := benchProblem(b)
			env, err := mdp.NewEnv(p, mdp.Config{DisableRewardCache: tc.disable})
			if err != nil {
				b.Fatal(err)
			}
			env.Step(0) // populate the cache for action 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.Reset()
				env.Step(0)
			}
		})
	}
}

// BenchmarkRewardShaping is a quality ablation (DESIGN.md decision 4):
// it reports the best discovered utility with and without the Alg. 2
// first-expansion shaping bonus.
func BenchmarkRewardShaping(b *testing.B) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"shaped", false}, {"unshaped", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var best float64
			for i := 0; i < b.N; i++ {
				p := benchProblem(b)
				m := rlminer.New(rlminer.Config{
					TrainSteps: 1500,
					Seed:       int64(100 + i),
					Env:        mdp.Config{DisableShaping: tc.disable},
				})
				res, err := m.Mine(p)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rules) > 0 {
					best += res.Rules[0].Measures.Utility
				}
			}
			b.ReportMetric(best/float64(b.N), "topU/op")
		})
	}
}

// BenchmarkGlobalMask is the Alg. 1 global-mask ablation (DESIGN.md
// decision 5): without it the agent wastes steps regenerating rules.
func BenchmarkGlobalMask(b *testing.B) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"masked", false}, {"unmasked", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var explored float64
			for i := 0; i < b.N; i++ {
				p := benchProblem(b)
				m := rlminer.New(rlminer.Config{
					TrainSteps: 1500,
					Seed:       int64(200 + i),
					Env:        mdp.Config{DisableGlobalMask: tc.disable},
				})
				res, err := m.Mine(p)
				if err != nil {
					b.Fatal(err)
				}
				explored += float64(res.Explored)
			}
			b.ReportMetric(explored/float64(b.N), "explored/op")
		})
	}
}

// BenchmarkEncodingWidth measures the §IV-A domain compression
// (DESIGN.md decision 6): state width with and without prefix bucketing
// on the large-domain Location dataset.
func BenchmarkEncodingWidth(b *testing.B) {
	ds, err := datagen.Location().Build(datagen.DefaultSpec(2559, 3430, 1))
	if err != nil {
		b.Fatal(err)
	}
	p := &core.Problem{
		Input: ds.Input, Master: ds.Master, Match: ds.Match,
		Y: ds.Y, Ym: ds.Ym, SupportThreshold: 10,
	}
	for _, tc := range []struct {
		name      string
		maxDomain int
	}{{"compressed-32", 32}, {"uncompressed", 1 << 20}} {
		b.Run(tc.name, func(b *testing.B) {
			var dim int
			for i := 0; i < b.N; i++ {
				s := core.BuildSpace(p, core.SpaceConfig{MaxDomain: tc.maxDomain, MinValueCount: 1, MaxValueFrac: -1})
				dim = s.Dim()
			}
			b.ReportMetric(float64(dim), "dims")
		})
	}
}

// BenchmarkNSplit sweeps the continuous-range count (§IV-A) on Adult and
// reports the resulting state width.
func BenchmarkNSplit(b *testing.B) {
	ds, err := datagen.Adult().Build(datagen.DefaultSpec(4000, 500, 1))
	if err != nil {
		b.Fatal(err)
	}
	p := &core.Problem{
		Input: ds.Input, Master: ds.Master, Match: ds.Match,
		Y: ds.Y, Ym: ds.Ym, SupportThreshold: ds.SupportThreshold,
	}
	for _, nsplit := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("nsplit-%d", nsplit), func(b *testing.B) {
			var dim int
			for i := 0; i < b.N; i++ {
				s := core.BuildSpace(p, core.SpaceConfig{NSplit: nsplit, MinValueCount: p.SupportThreshold})
				dim = s.Dim()
			}
			b.ReportMetric(float64(dim), "dims")
		})
	}
}

// BenchmarkMLPForward measures the value network's forward pass at the
// dimensions RLMiner actually uses.
func BenchmarkMLPForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := nn.NewMLP(rng, 80, 64, 64, 81)
	in := make([]float64, 80)
	in[3] = 1
	in[40] = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Predict(in)
	}
}

// BenchmarkEnvStep measures one MDP environment step (mask + transition
// + reward) with a warm cache.
func BenchmarkEnvStep(b *testing.B) {
	p := benchProblem(b)
	env, err := mdp.NewEnv(p, mdp.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if env.Done() {
			env.Reset()
		}
		env.Step(i % env.ActionDim())
	}
}

// minNs times f runs times and returns the fastest wall-clock
// nanoseconds — the serial baseline the parallel benchmarks report
// their speedup against.
func minNs(runs int, f func()) float64 {
	var best time.Duration
	for i := 0; i < runs; i++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0); i == 0 || d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds())
}

// BenchmarkEvaluateParallel measures a full-relation pattern scan (the
// Evaluate parentCover == nil path) on a large input at all-CPU
// parallelism, reporting the speedup over the same scan at
// Parallelism 1, in both engines: the scalar subbench pins ScalarEval
// and exercises the retained chunked row-at-a-time scan, while the
// columnar subbench runs the posting-list default that replaced full
// scans — recorded side by side so BENCH_parallel.json tells the whole
// story instead of only the legacy path. Parallel and serial scans
// return bit-identical covers in both engines; re-record the baseline
// with scripts/bench.sh.
func BenchmarkEvaluateParallel(b *testing.B) {
	ds, err := datagen.Covid().Build(datagen.DefaultSpec(40000, 1824, 1))
	if err != nil {
		b.Fatal(err)
	}
	for _, eng := range []struct {
		name   string
		scalar bool
	}{
		{"columnar", false},
		{"scalar", true},
	} {
		b.Run(eng.name, func(b *testing.B) {
			p := &core.Problem{
				Input: ds.Input, Master: ds.Master, Match: ds.Match,
				Y: ds.Y, Ym: ds.Ym, SupportThreshold: ds.SupportThreshold,
				ScalarEval: eng.scalar,
			}
			ov := p.Input.Schema().MustIndex("overseas")
			no, ok := p.Input.Dict(ov).Lookup("No")
			if !ok {
				b.Fatal("No not interned")
			}
			scan := rule.New(nil, p.Y, p.Ym, nil).WithCondition(rule.Eq(ov, no))

			serial := p.NewEvaluator()
			serial.Parallelism = 1
			serial.Evaluate(scan, nil) // warm indexes outside the timings
			par := p.NewEvaluator()    // Parallelism defaults to NumCPU
			par.Evaluate(scan, nil)

			serialNs := minNs(5, func() { serial.Evaluate(scan, nil) })
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				par.Evaluate(scan, nil)
			}
			b.ReportMetric(serialNs*float64(b.N)/float64(b.Elapsed().Nanoseconds()), "speedup")
			b.ReportMetric(float64(runtime.NumCPU()), "cpus")
		})
	}
}

// BenchmarkEnuMinerParallel measures a full EnuMinerH3 mine on the
// level-synchronized parallel frontier against the serial walk,
// reporting the speedup. A sanity check asserts the two walks explored
// identically; the recorded baseline lives in BENCH_parallel.json.
func BenchmarkEnuMinerParallel(b *testing.B) {
	p := benchProblem(b)
	mine := func(workers int) *core.ResultSet {
		res, err := enuminer.NewH3(enuminer.Config{Parallelism: workers}).Mine(p)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	base := mine(1)
	serialNs := minNs(3, func() { mine(1) })
	b.ResetTimer()
	var res *core.ResultSet
	for i := 0; i < b.N; i++ {
		res = mine(0) // 0 = one worker per CPU
	}
	b.StopTimer()
	if res.Explored != base.Explored || len(res.Rules) != len(base.Rules) {
		b.Fatalf("parallel walk diverged: explored %d/%d rules %d/%d",
			res.Explored, base.Explored, len(res.Rules), len(base.Rules))
	}
	b.ReportMetric(serialNs*float64(b.N)/float64(b.Elapsed().Nanoseconds()), "speedup")
	b.ReportMetric(float64(runtime.NumCPU()), "cpus")
}

// BenchmarkUtility measures the plain utility computation.
func BenchmarkUtility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		measure.Utility(1000+i%100, 0.9, 0.5)
	}
}
