// ermvet is the repository's custom static-analysis gate: it
// machine-checks the determinism and concurrency invariants the
// parallel mining engine and the serving daemon rely on (see package
// erminer/internal/analysis for the check list and the
// //ermvet:ignore suppression convention).
//
// Usage:
//
//	go run ./cmd/ermvet ./...
//	go run ./cmd/ermvet ./internal/serve ./internal/measure
//	go run ./cmd/ermvet -checks detrand,maporder ./...
//	go run ./cmd/ermvet -list
//
// Patterns are module-root-relative directories; a trailing /... matches
// the subtree. Exit status is 1 when any finding survives suppression,
// 2 when the module itself fails to load or type-check.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"erminer/internal/analysis"
)

func main() {
	listChecks := flag.Bool("list", false, "list the checks and exit")
	checkNames := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ermvet [-list] [-checks name,...] [pattern ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listChecks {
		for _, c := range analysis.AllChecks {
			fmt.Printf("%-10s %s\n", c.Name, c.Doc)
		}
		return
	}
	checks, err := selectChecks(*checkNames)
	if err != nil {
		fail(err)
	}

	root, err := moduleRoot()
	if err != nil {
		fail(err)
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fail(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings := 0
	for _, pkg := range pkgs {
		rel, err := filepath.Rel(root, pkg.Dir)
		if err != nil {
			fail(err)
		}
		if !matchAny(patterns, filepath.ToSlash(rel)) {
			continue
		}
		for _, d := range analysis.Run(pkg, checks) {
			d.Pos.Filename = relTo(root, d.Pos.Filename)
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "ermvet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ermvet:", err)
	os.Exit(2)
}

// selectChecks resolves the -checks flag; an empty flag selects every
// check.
func selectChecks(names string) ([]*analysis.Check, error) {
	if names == "" {
		return analysis.AllChecks, nil
	}
	var checks []*analysis.Check
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, c := range analysis.AllChecks {
			if c.Name == name {
				checks = append(checks, c)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown check %q (run ermvet -list)", name)
		}
	}
	return checks, nil
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// matchAny matches a module-root-relative package directory ("." for
// the root package) against the given patterns.
func matchAny(patterns []string, rel string) bool {
	for _, p := range patterns {
		p = strings.TrimPrefix(filepath.ToSlash(p), "./")
		switch {
		case p == "..." || p == ".":
			return true
		case strings.HasSuffix(p, "/..."):
			base := strings.TrimSuffix(p, "/...")
			if rel == base || strings.HasPrefix(rel, base+"/") {
				return true
			}
		case rel == p:
			return true
		}
	}
	return false
}

func relTo(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
