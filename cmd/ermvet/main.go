// ermvet is the repository's custom static-analysis gate: it
// machine-checks the determinism and concurrency invariants the
// parallel mining engine and the serving daemon rely on (see package
// erminer/internal/analysis for the check list and the
// //ermvet:ignore suppression convention).
//
// Usage:
//
//	go run ./cmd/ermvet ./...
//	go run ./cmd/ermvet ./internal/serve ./internal/measure
//	go run ./cmd/ermvet -checks detrand,maporder ./...
//	go run ./cmd/ermvet -checks all -json ./...
//	go run ./cmd/ermvet -sarif ./... > ermvet.sarif
//	go run ./cmd/ermvet -timing ./...
//	go run ./cmd/ermvet -update-wire
//	go run ./cmd/ermvet -update-metrics
//	go run ./cmd/ermvet -list
//
// Patterns are module-root-relative directories; a trailing /... matches
// the subtree. Exit status is 1 when any finding survives suppression,
// 2 when the module itself fails to load or type-check (or a flag is
// invalid).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"erminer/internal/analysis"
)

func main() {
	listChecks := flag.Bool("list", false, "list the checks and exit")
	checkNames := flag.String("checks", "", "comma-separated subset of checks to run, or \"all\" (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as newline-delimited JSON, including suppressed ones")
	sarifOut := flag.Bool("sarif", false, "emit findings as one SARIF 2.1.0 document, including suppressed ones")
	updateWire := flag.Bool("update-wire", false, "regenerate the golden wire-shape manifest and exit")
	updateMetrics := flag.Bool("update-metrics", false, "regenerate the golden metric-name manifest and exit")
	timing := flag.Bool("timing", false, "report per-check wall time (stderr table; timing records in -json; run properties in -sarif)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ermvet [-list] [-checks name,...] [-json|-sarif] [-timing] [-update-wire] [-update-metrics] [pattern ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *jsonOut && *sarifOut {
		fail(fmt.Errorf("-json and -sarif are mutually exclusive"))
	}

	if *listChecks {
		for _, c := range analysis.AllChecks {
			fmt.Printf("%-12s %s\n", c.Name, c.Doc)
		}
		return
	}
	checks, err := selectChecks(*checkNames)
	if err != nil {
		fail(err)
	}

	root, err := moduleRoot()
	if err != nil {
		fail(err)
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fail(err)
	}

	manifestPath := filepath.Join(root, filepath.FromSlash(analysis.WireManifestPath))
	if *updateWire {
		if err := regenerateWireManifest(manifestPath, pkgs); err != nil {
			fail(err)
		}
		fmt.Printf("ermvet: wrote %s\n", analysis.WireManifestPath)
		return
	}
	metricsPath := filepath.Join(root, filepath.FromSlash(analysis.MetricsManifestPath))
	if *updateMetrics {
		if err := analysis.UpdateMetricsManifest(pkgs).WriteMetricsManifest(metricsPath); err != nil {
			fail(err)
		}
		fmt.Printf("ermvet: wrote %s\n", analysis.MetricsManifestPath)
		return
	}

	// The golden manifests, the module call graph, the route table and
	// the lock-order analysis are shared context: the per-package passes
	// gate against module-wide state computed once here. A missing
	// manifest is an error when its check was selected — running the
	// gate without its golden file would silently pass.
	opts := &analysis.Options{Graph: analysis.BuildCallGraph(pkgs)}
	if checksInclude(checks, "wiredrift") {
		manifest, err := analysis.LoadWireManifest(manifestPath)
		if err != nil {
			fail(fmt.Errorf("%w (generate it with ermvet -update-wire)", err))
		}
		opts.Wire = manifest
	}
	if checksInclude(checks, "metricdrift") {
		manifest, err := analysis.LoadMetricsManifest(metricsPath)
		if err != nil {
			fail(fmt.Errorf("%w (generate it with ermvet -update-metrics)", err))
		}
		opts.Metrics = manifest
	}
	if checksInclude(checks, "httpcontract") {
		opts.Routes = analysis.CollectRoutes(pkgs)
	}
	if checksInclude(checks, "lockorder") {
		opts.Locks = analysis.BuildLockOrder(pkgs, opts.Graph)
	}
	var timings map[string]time.Duration
	if *timing {
		timings = make(map[string]time.Duration)
		opts.Timing = func(check string, d time.Duration) { timings[check] += d }
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings := 0
	// SARIF is one document over the whole run, so diagnostics are
	// collected across packages and written once; NDJSON streams
	// per package.
	var sarifDiags []analysis.Diagnostic
	for _, pkg := range pkgs {
		rel, err := filepath.Rel(root, pkg.Dir)
		if err != nil {
			fail(err)
		}
		if !matchAny(patterns, filepath.ToSlash(rel)) {
			continue
		}
		diags := analysis.RunAll(pkg, checks, opts)
		for i := range diags {
			diags[i].Pos.Filename = relTo(root, diags[i].Pos.Filename)
		}
		if *jsonOut {
			if err := analysis.WriteJSON(os.Stdout, diags); err != nil {
				fail(err)
			}
		}
		if *sarifOut {
			sarifDiags = append(sarifDiags, diags...)
		}
		for _, d := range diags {
			if d.Suppressed {
				continue
			}
			if !*jsonOut && !*sarifOut {
				fmt.Println(d)
			}
			findings++
		}
	}
	if *sarifOut {
		if err := analysis.WriteSARIFWith(os.Stdout, sarifDiags, timings); err != nil {
			fail(err)
		}
	}
	if *timing {
		if *jsonOut {
			if err := analysis.WriteTimingsJSON(os.Stdout, timings); err != nil {
				fail(err)
			}
		}
		printTimings(timings)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "ermvet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ermvet:", err)
	os.Exit(2)
}

// printTimings renders the -timing table on stderr, slowest check
// first, so the output never mixes into the machine-readable stdout
// streams.
func printTimings(timings map[string]time.Duration) {
	names := make([]string, 0, len(timings))
	for name := range timings {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if timings[names[i]] != timings[names[j]] {
			return timings[names[i]] > timings[names[j]]
		}
		return names[i] < names[j]
	})
	fmt.Fprintf(os.Stderr, "ermvet: per-check wall time\n")
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "  %-12s %8.1fms\n", name, float64(timings[name].Microseconds())/1000)
	}
}

// regenerateWireManifest rewrites the golden manifest from the live
// shapes. An existing manifest constrains the update: a shape change
// without a version bump is refused, so the manifest can never be
// regenerated into silently blessing a format break.
func regenerateWireManifest(path string, pkgs []*analysis.Package) error {
	var old *analysis.WireManifest
	if _, err := os.Stat(path); err == nil {
		old, err = analysis.LoadWireManifest(path)
		if err != nil {
			return err
		}
	}
	m, err := analysis.UpdateWireManifest(old, pkgs)
	if err != nil {
		return err
	}
	return m.WriteWireManifest(path)
}

func checksInclude(checks []*analysis.Check, name string) bool {
	for _, c := range checks {
		if c.Name == name {
			return true
		}
	}
	return false
}

// selectChecks resolves the -checks flag; an empty flag or "all"
// selects every check. An unknown name is an error that lists the
// valid set, so a typo can never silently shrink the gate.
func selectChecks(names string) ([]*analysis.Check, error) {
	if names == "" || names == "all" {
		return analysis.AllChecks, nil
	}
	var checks []*analysis.Check
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, c := range analysis.AllChecks {
			if c.Name == name {
				checks = append(checks, c)
				found = true
				break
			}
		}
		if !found {
			valid := make([]string, 0, len(analysis.AllChecks))
			for _, c := range analysis.AllChecks {
				valid = append(valid, c.Name)
			}
			return nil, fmt.Errorf("unknown check %q; valid checks: all, %s", name, strings.Join(valid, ", "))
		}
	}
	return checks, nil
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// matchAny matches a module-root-relative package directory ("." for
// the root package) against the given patterns.
func matchAny(patterns []string, rel string) bool {
	for _, p := range patterns {
		p = strings.TrimPrefix(filepath.ToSlash(p), "./")
		switch {
		case p == "..." || p == ".":
			return true
		case strings.HasSuffix(p, "/..."):
			base := strings.TrimSuffix(p, "/...")
			if rel == base || strings.HasPrefix(rel, base+"/") {
				return true
			}
		case rel == p:
			return true
		}
	}
	return false
}

func relTo(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
