package main

import (
	"os"
	"path/filepath"
	"testing"
)

func baseOptions() options {
	return options{
		dataset:  "covid",
		method:   "enuminer",
		k:        10,
		noise:    0.05,
		seed:     1,
		input:    500,
		master:   300,
		doRepair: true,
	}
}

func TestRunBenchmarkMode(t *testing.T) {
	o := baseOptions()
	if err := run(o); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunUnknownDataset(t *testing.T) {
	o := baseOptions()
	o.dataset = "bogus"
	if run(o) == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunUnknownMethod(t *testing.T) {
	o := baseOptions()
	o.method = "bogus"
	if run(o) == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestRunExportRules(t *testing.T) {
	o := baseOptions()
	o.exportTo = filepath.Join(t.TempDir(), "rules.json")
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(o.exportTo)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty rules export")
	}
}

func TestRunRLMinerSaveAndLoadModel(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "model.bin")

	o := baseOptions()
	o.method = "rlminer"
	o.steps = 600
	o.saveModel = model
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatalf("model not written: %v", err)
	}

	// Fine-tune from the saved model on slightly larger data.
	o2 := baseOptions()
	o2.method = "rlminer"
	o2.steps = 600
	o2.input = 700
	o2.seed = 2
	o2.loadModel = model
	if err := run(o2); err != nil {
		t.Fatal(err)
	}
}

func TestRunSaveModelWrongMethod(t *testing.T) {
	o := baseOptions()
	o.saveModel = filepath.Join(t.TempDir(), "m.bin")
	if run(o) == nil {
		t.Fatal("-save-model with enuminer accepted")
	}
}

func TestRunCSVMode(t *testing.T) {
	dir := t.TempDir()
	input := filepath.Join(dir, "in.csv")
	master := filepath.Join(dir, "ms.csv")
	inData := "k,y\n"
	msData := "k,y\n"
	for i := 0; i < 60; i++ {
		k := []string{"a", "b", "c"}[i%3]
		inData += k + ",y-" + k + "\n"
		msData += k + ",y-" + k + "\n"
	}
	if err := os.WriteFile(input, []byte(inData), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(master, []byte(msData), 0o644); err != nil {
		t.Fatal(err)
	}

	o := baseOptions()
	o.inputCSV = input
	o.masterCSV = master
	o.y, o.ym = "y", "y"
	o.match = "k=k"
	if err := run(o); err != nil {
		t.Fatal(err)
	}

	// Missing pieces are rejected.
	o.masterCSV = ""
	if run(o) == nil {
		t.Fatal("CSV mode without master accepted")
	}
	o.masterCSV = master
	o.match = "malformed"
	if run(o) == nil {
		t.Fatal("malformed -match accepted")
	}
}

func TestRunExplain(t *testing.T) {
	o := baseOptions()
	o.explain = 0
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	o.explain = 1 << 20
	if run(o) == nil {
		t.Fatal("out-of-range -explain accepted")
	}
}
