// Command erminer mines editing rules — on a built-in benchmark dataset
// or on your own CSV files — and optionally repairs the dirty input with
// them.
//
// Benchmark mode:
//
//	erminer -dataset covid -method rlminer -k 20 -noise 0.1 -seed 1
//
// CSV mode (schema match inferred from value overlap unless -match is
// given):
//
//	erminer -input-csv shops.csv -master-csv directory.csv \
//	        -y postcode -ym postcode -match district=district,area=area
//
// Artifacts:
//
//	-export-rules rules.json    write discovered rules as portable JSON
//	-import-rules rules.json    load rules instead of mining (mine-free repair)
//	-mutate delta.json          apply a data delta (appends + cell updates, the
//	                            PATCH /v1/data wire format) before mining
//	-save-model model.bin       persist the RLMiner value network
//	-load-model model.bin       fine-tune a persisted model (RLMiner-ft)
//	-checkpoint-dir dir         crash-safe RLMiner training checkpoints; an
//	                            interrupted run auto-resumes bit-identically
//
// Methods: rlminer (default), enuminer, enuminerh3, ctane.
//
// Evaluation runs on the parallel engine by default (-parallel 0 = one
// worker per CPU); -parallel 1 forces the serial path. Results are
// bit-identical at any worker count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"erminer"
)

type options struct {
	dataset    string
	method     string
	k          int
	noise      float64
	seed       int64
	input      int
	master     int
	eta        int
	steps      int
	parallel   int
	scalarEval bool
	doRepair   bool
	verbose    bool
	inputCSV   string
	masterCSV  string
	y, ym      string
	match      string
	exportTo   string
	importFrom string
	mutate     string
	saveModel  string
	loadModel  string
	explain    int

	checkpointDir        string
	checkpointEvery      time.Duration
	checkpointEverySteps int
	crashAtStep          int
}

func main() {
	var o options
	flag.StringVar(&o.dataset, "dataset", "covid", "benchmark dataset: adult, covid, nursery or location")
	flag.StringVar(&o.method, "method", "rlminer", "miner: rlminer, enuminer, enuminerh3 or ctane")
	flag.IntVar(&o.k, "k", 50, "number of rules to discover (top-K)")
	flag.Float64Var(&o.noise, "noise", 0.10, "cell error-injection rate (benchmark mode)")
	flag.Int64Var(&o.seed, "seed", 1, "random seed")
	flag.IntVar(&o.input, "input", 0, "input size (0 = paper default; benchmark mode)")
	flag.IntVar(&o.master, "master", 0, "master size (0 = paper default; benchmark mode)")
	flag.IntVar(&o.eta, "eta", 0, "support threshold (0 = dataset default)")
	flag.IntVar(&o.steps, "steps", 5000, "RLMiner training steps")
	flag.IntVar(&o.parallel, "parallel", 0, "evaluation workers (0 = all CPUs, 1 = serial; results are identical at any setting)")
	flag.BoolVar(&o.scalarEval, "scalar-eval", false, "force the retained row-at-a-time evaluation path (columnar engine off; results are identical)")
	flag.BoolVar(&o.doRepair, "repair", true, "apply rules and report results")
	flag.BoolVar(&o.verbose, "v", false, "print every discovered rule")
	flag.StringVar(&o.inputCSV, "input-csv", "", "input CSV path (enables CSV mode)")
	flag.StringVar(&o.masterCSV, "master-csv", "", "master CSV path (CSV mode)")
	flag.StringVar(&o.y, "y", "", "dependent input column (CSV mode)")
	flag.StringVar(&o.ym, "ym", "", "dependent master column (CSV mode)")
	flag.StringVar(&o.match, "match", "", "schema match as in1=ms1,in2=ms2 (CSV mode; empty = infer)")
	flag.StringVar(&o.exportTo, "export-rules", "", "write discovered rules to this JSON file")
	flag.StringVar(&o.importFrom, "import-rules", "", "load rules from this JSON file instead of mining (mine-free repair)")
	flag.StringVar(&o.mutate, "mutate", "", "apply a data delta from this JSON file before mining (PATCH /v1/data wire format: target, appends, updates)")
	flag.StringVar(&o.saveModel, "save-model", "", "persist the RLMiner value network to this file")
	flag.StringVar(&o.loadModel, "load-model", "", "fine-tune a persisted RLMiner model from this file")
	flag.IntVar(&o.explain, "explain", -1, "print the repair explanation for this tuple index")
	flag.StringVar(&o.checkpointDir, "checkpoint-dir", "", "directory for crash-safe RLMiner training checkpoints; an interrupted run auto-resumes from it")
	flag.DurationVar(&o.checkpointEvery, "checkpoint-every", 0, "wall-clock period between checkpoint writes (0 = 30s)")
	flag.IntVar(&o.checkpointEverySteps, "checkpoint-every-steps", 0, "additionally checkpoint every N training steps (0 = off)")
	flag.IntVar(&o.crashAtStep, "crash-at-step", 0, "exit(3) at this training step — fault injection for the checkpoint smoke test")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "erminer:", err)
		os.Exit(1)
	}
}

func run(o options) (err error) {
	var p *erminer.Problem
	var truth []int32

	if o.inputCSV != "" {
		if o.masterCSV == "" || o.y == "" || o.ym == "" {
			return fmt.Errorf("CSV mode needs -master-csv, -y and -ym")
		}
		var pairs map[string]string
		if o.match != "" {
			pairs = make(map[string]string)
			for _, kv := range strings.Split(o.match, ",") {
				in, ms, ok := strings.Cut(kv, "=")
				if !ok {
					return fmt.Errorf("bad -match entry %q (want in=ms)", kv)
				}
				pairs[in] = ms
			}
		}
		p, err = erminer.LoadCSVProblem(erminer.CSVSpec{
			InputPath:        o.inputCSV,
			MasterPath:       o.masterCSV,
			Y:                o.y,
			Ym:               o.ym,
			MatchPairs:       pairs,
			SupportThreshold: o.eta,
		})
		if err != nil {
			return err
		}
	} else {
		ds, err := erminer.BuildDataset(o.dataset, erminer.DatasetSpec{
			InputSize:  o.input,
			MasterSize: o.master,
			Seed:       o.seed,
		})
		if err != nil {
			return err
		}
		if o.noise > 0 {
			n := ds.InjectErrors(erminer.NoiseConfig{Rate: o.noise, Seed: o.seed + 1})
			fmt.Printf("injected %d cell errors at rate %.2f\n", n, o.noise)
		}
		p = ds.Problem(o.eta)
		truth = ds.Truth()
	}
	p.TopK = o.k
	p.Parallelism = o.parallel
	p.ScalarEval = o.scalarEval
	if o.mutate != "" {
		if err := applyMutation(p, o.mutate); err != nil {
			return err
		}
	}
	// One shared master-index cache across mining, reward queries,
	// repair and explanations: no component rebuilds another's indexes.
	p.ShareIndexes()
	fmt.Printf("problem: input %d×%d, master %d×%d, |M|=%d, η_s=%d, K=%d, workers=%d\n",
		p.Input.NumRows(), p.Input.Schema().Len(),
		p.Master.NumRows(), p.Master.Schema().Len(),
		p.Match.Size(), p.SupportThreshold, p.K(), p.Workers())

	var res *erminer.ResultSet
	var rlm *erminer.RLMiner
	if o.importFrom != "" {
		if o.saveModel != "" || o.loadModel != "" {
			return fmt.Errorf("-import-rules cannot be combined with -save-model/-load-model")
		}
		data, err := os.ReadFile(o.importFrom)
		if err != nil {
			return err
		}
		rules, err := erminer.ImportRules(p, data)
		if err != nil {
			return err
		}
		res = &erminer.ResultSet{Rules: rules}
		fmt.Printf("imported %d rules from %s (mine-free run)\n", len(rules), o.importFrom)
		return finish(o, p, res, truth)
	}
	name := strings.ToLower(o.method)
	start := time.Now()
	switch name {
	case "rlminer":
		cfg := erminer.RLMinerConfig{TrainSteps: o.steps, Seed: o.seed}
		var ckPath string
		if o.checkpointDir != "" {
			if err := os.MkdirAll(o.checkpointDir, 0o755); err != nil {
				return err
			}
			ckPath = filepath.Join(o.checkpointDir, "erminer.ckpt")
			cfg.CheckpointPath = ckPath
			cfg.CheckpointEvery = o.checkpointEvery
			cfg.CheckpointEverySteps = o.checkpointEverySteps
		}
		if o.crashAtStep > 0 {
			cfg.Progress = func(step, total int) {
				if step == o.crashAtStep {
					fmt.Fprintf(os.Stderr, "erminer: injected crash at training step %d/%d\n", step, total)
					os.Exit(3)
				}
			}
		}
		rlm = erminer.NewRLMiner(cfg)
		switch {
		case o.loadModel != "":
			saved, err := loadModelFile(o.loadModel)
			if err != nil {
				return err
			}
			res, err = rlm.MineFineTunedFromSaved(p, saved)
			if err != nil {
				return err
			}
		case ckPath != "":
			ck, ckErr := erminer.ReadCheckpointFile(ckPath)
			if ckErr == nil {
				fmt.Printf("resuming from checkpoint %s (%s, step %d/%d)\n",
					ckPath, ck.Name(), ck.Step(), ck.TotalSteps())
				res, err = rlm.ResumeMine(p, ck)
			} else {
				res, err = rlm.Mine(p)
			}
			if err != nil {
				return err
			}
		default:
			res, err = rlm.Mine(p)
			if err != nil {
				return err
			}
		}
		if ckPath != "" {
			//ermvet:ignore errdrop best-effort cleanup; the run completed, its checkpoint is obsolete
			os.Remove(ckPath)
		}
	case "enuminer":
		res, err = erminer.NewEnuMiner(erminer.EnuMinerConfig{}).Mine(p)
	case "enuminerh3":
		res, err = erminer.NewEnuMinerH3(erminer.EnuMinerConfig{}).Mine(p)
	case "ctane":
		res, err = erminer.NewCTANE(erminer.CTANEConfig{}).Mine(p)
	default:
		return fmt.Errorf("unknown method %q", o.method)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s discovered %d rules in %v (explored %d candidates)\n",
		o.method, len(res.Rules), time.Since(start).Round(time.Millisecond), res.Explored)

	if o.saveModel != "" {
		if rlm == nil {
			return fmt.Errorf("-save-model requires -method rlminer")
		}
		f, err := os.Create(o.saveModel)
		if err != nil {
			return err
		}
		if err := erminer.SaveModel(rlm, f); err != nil {
			//ermvet:ignore errdrop the save error is already being returned; close failure is secondary
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("saved model to %s\n", o.saveModel)
	}
	return finish(o, p, res, truth)
}

// finish runs the shared post-mining pipeline — rule listing, export,
// explanation and repair — for both mined and imported rule sets.
func finish(o options, p *erminer.Problem, res *erminer.ResultSet, truth []int32) error {
	show := len(res.Rules)
	if !o.verbose && show > 10 {
		show = 10
	}
	for i := 0; i < show; i++ {
		r := res.Rules[i]
		fmt.Printf("  #%-3d U=%-8.2f S=%-6d C=%.3f Q=%+.3f  %s\n",
			i+1, r.Measures.Utility, r.Measures.Support,
			r.Measures.Certainty, r.Measures.Quality,
			erminer.FormatRule(p, r.Rule))
	}
	if show < len(res.Rules) {
		fmt.Printf("  ... %d more (use -v to print all)\n", len(res.Rules)-show)
	}

	if o.exportTo != "" {
		data, err := erminer.ExportRules(p, res.Rules)
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.exportTo, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("exported rules to %s\n", o.exportTo)
	}

	if o.explain >= 0 {
		if o.explain >= p.Input.NumRows() {
			return fmt.Errorf("-explain %d out of range (%d tuples)", o.explain, p.Input.NumRows())
		}
		exp := erminer.Explain(p, res.Rules, o.explain)
		fmt.Print(exp.Format(p.Input, p.Master.Schema(), p.Y))
	}

	if o.doRepair {
		fixes := erminer.Repair(p, res.Rules)
		fmt.Printf("repair: covered %d/%d tuples\n", fixes.Covered, p.Input.NumRows())
		if truth != nil {
			prf := erminer.Evaluate(fixes.Pred, truth)
			fmt.Printf("repair quality: weighted P=%.3f R=%.3f F1=%.3f\n",
				prf.Precision, prf.Recall, prf.F1)
		}
	}
	return nil
}

func loadModelFile(path string) (*erminer.SavedModel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//ermvet:ignore errdrop read-only descriptor; closing cannot lose data
	defer f.Close()
	return erminer.LoadModel(f)
}

// applyMutation applies a data delta from a JSON file in the daemon's
// PATCH /v1/data wire format — {"target": "input"|"master", "appends":
// [{col: val}], "updates": [{"row", "attr", "value"}]} — to the loaded
// problem before mining, so an offline run can reproduce exactly what
// a patched daemon would see. An empty value means Null.
func applyMutation(p *erminer.Problem, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var m struct {
		Target  string              `json:"target"`
		Appends []map[string]string `json:"appends"`
		Updates []struct {
			Row   int    `json:"row"`
			Attr  string `json:"attr"`
			Value string `json:"value"`
		} `json:"updates"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("mutation file %s: %w", path, err)
	}
	var rel *erminer.Relation
	switch strings.ToLower(m.Target) {
	case "input":
		rel = p.Input
	case "master":
		rel = p.Master
	default:
		return fmt.Errorf("mutation file %s: target %q (want input or master)", path, m.Target)
	}
	sc := rel.Schema()
	var d erminer.Delta
	for _, row := range m.Appends {
		codes := make([]int32, sc.Len())
		for i := range codes {
			codes[i] = erminer.Null
		}
		for name, v := range row {
			idx := sc.Index(name)
			if idx < 0 {
				return fmt.Errorf("mutation file %s: unknown column %q", path, name)
			}
			if v != "" {
				codes[idx] = rel.Dict(idx).Code(v)
			}
		}
		d.Appends = append(d.Appends, codes)
	}
	for _, u := range m.Updates {
		idx := sc.Index(u.Attr)
		if idx < 0 {
			return fmt.Errorf("mutation file %s: unknown column %q", path, u.Attr)
		}
		code := erminer.Null
		if u.Value != "" {
			code = rel.Dict(idx).Code(u.Value)
		}
		d.Updates = append(d.Updates, erminer.CellUpdate{Row: u.Row, Col: idx, Code: code})
	}
	cs, err := rel.ApplyDelta(d)
	if err != nil {
		return fmt.Errorf("mutation file %s: %w", path, err)
	}
	fmt.Printf("mutated %s: +%d rows, %d columns updated (now %d rows, version %d)\n",
		strings.ToLower(m.Target), cs.Appended, len(cs.Cols), rel.NumRows(), rel.Version())
	return nil
}
