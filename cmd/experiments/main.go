// Command experiments regenerates the paper's evaluation section: every
// table and figure of §V has a driver that prints the same rows/series.
//
// Usage:
//
//	experiments -run all                 # everything, mid-size data
//	experiments -run tableIII -scale paper -repeats 5
//	experiments -run figure8 -scale bench
//
// Experiments: tableI tableII tableIII figure2 figure6 figure7 figure8
// figure9 figure10 figure11 figure12, or all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"erminer/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "all", "experiment name or 'all'")
		scale   = flag.String("scale", "default", "data scale: bench, default or paper")
		repeats = flag.Int("repeats", 0, "repeated runs per cell (0 = scale default)")
		seed    = flag.Int64("seed", 1, "base random seed")
	)
	flag.Parse()

	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := &experiments.Config{
		Scale:   sc,
		Repeats: *repeats,
		Seed:    *seed,
		Out:     os.Stdout,
	}
	start := time.Now()
	if err := cfg.Run(*run); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\ntotal: %v\n", time.Since(start).Round(time.Millisecond))
}
