// Command erminerd is the online rule-serving and repair daemon: it
// loads (or mines) an editing-rule set for a dataset or CSV problem and
// serves it over HTTP.
//
// Endpoints:
//
//	POST /v1/repair        batch of tuples in → fixed cells + per-fix rule explanations out
//	POST /v1/validate      batch of tuples in → per-tuple consistent/violation/missing/uncovered
//	GET  /v1/rules         active rule set in the portable JSON wire format
//	PUT  /v1/rules         zero-downtime hot swap of the active rule set
//	PATCH /v1/data         apply a data delta (row appends + cell updates) with
//	                       incremental index patching and rule re-validation;
//	                       "remine": true enqueues an RLMiner-ft fine-tune job
//	POST /v1/jobs          submit an asynchronous mining job (enuminer, enuminerh3, rlminer, rlminer-ft, ctane)
//	GET  /v1/jobs[/{id}]   job states: queued → running → done | failed
//	GET  /healthz          liveness + active rule-set generation
//	GET  /metrics          plain-text counters incl. p50/p99 repair latency
//
// Start it on a benchmark dataset and mine an initial rule set:
//
//	erminerd -dataset covid -noise 0.1 -mine enuminerh3
//
// Or serve your own CSV problem with a previously exported rule file:
//
//	erminerd -input-csv shops.csv -master-csv directory.csv \
//	         -y postcode -ym postcode -rules rules.json
//
// Concurrent repair requests share one master-index cache, the request
// queue is bounded (429 under overload), every request carries a
// deadline, and SIGINT/SIGTERM drain in-flight work before exit.
//
// Cluster mode (ermcluster) scales the serving path horizontally. Start
// N ordinary daemons as workers, then front them with a coordinator:
//
//	erminerd -worker -addr :8081 -input-csv shops.csv -master-csv directory.csv -y postcode -ym postcode
//	erminerd -worker -addr :8082 -input-csv shops.csv -master-csv directory.csv -y postcode -ym postcode
//	erminerd -cluster-coordinator -addr :8080 -workers http://localhost:8081,http://localhost:8082
//
// The coordinator serves the same /v1/repair and /v1/validate API,
// hash-partitions each batch across the workers and merges the results
// byte-identically to a single node; PUT /v1/rules replicates a rule
// generation to every worker with a two-phase stage/activate push, and
// PATCH /v1/data replicates a data delta to the whole fleet and checks
// it converged on one data version and rule generation. It holds no
// data itself — workers own the master data and rules.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"erminer"
)

type options struct {
	addr       string
	dataset    string
	noise      float64
	seed       int64
	input      int
	master     int
	eta        int
	k          int
	parallel   int
	scalarEval bool
	inputCSV   string
	masterCSV  string
	y, ym      string
	match      string
	rulesFile  string
	mine       string
	steps      int

	repairWorkers   int
	queueDepth      int
	timeout         time.Duration
	jobWorkers      int
	jobQueue        int
	maxBatch        int
	drainTimeout    time.Duration
	checkpointDir   string
	checkpointEvery time.Duration

	worker        bool
	coordinator   bool
	workers       string
	workerTimeout time.Duration
	retries       int
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.StringVar(&o.dataset, "dataset", "covid", "benchmark dataset: adult, covid, nursery or location")
	flag.Float64Var(&o.noise, "noise", 0.10, "cell error-injection rate for the benchmark training corpus")
	flag.Int64Var(&o.seed, "seed", 1, "random seed")
	flag.IntVar(&o.input, "input", 0, "input size (0 = paper default; benchmark mode)")
	flag.IntVar(&o.master, "master", 0, "master size (0 = paper default; benchmark mode)")
	flag.IntVar(&o.eta, "eta", 0, "support threshold (0 = dataset default)")
	flag.IntVar(&o.k, "k", 50, "rule budget for mining jobs (top-K)")
	flag.IntVar(&o.parallel, "parallel", 0, "evaluation workers (0 = all CPUs)")
	flag.BoolVar(&o.scalarEval, "scalar-eval", false, "force the retained row-at-a-time evaluation path (columnar engine off; results are identical)")
	flag.StringVar(&o.inputCSV, "input-csv", "", "input CSV path (enables CSV mode)")
	flag.StringVar(&o.masterCSV, "master-csv", "", "master CSV path (CSV mode)")
	flag.StringVar(&o.y, "y", "", "dependent input column (CSV mode)")
	flag.StringVar(&o.ym, "ym", "", "dependent master column (CSV mode)")
	flag.StringVar(&o.match, "match", "", "schema match as in1=ms1,in2=ms2 (CSV mode; empty = infer)")
	flag.StringVar(&o.rulesFile, "rules", "", "activate this exported rule file at startup")
	flag.StringVar(&o.mine, "mine", "", "mine an initial rule set at startup with this method (enuminer, enuminerh3, rlminer, ctane)")
	flag.IntVar(&o.steps, "steps", 5000, "RLMiner training steps for -mine and mining jobs")
	flag.IntVar(&o.repairWorkers, "repair-workers", 0, "concurrent repair/validate requests (0 = all CPUs)")
	flag.IntVar(&o.queueDepth, "queue-depth", 0, "bounded request queue; beyond it requests get 429 (0 = 64)")
	flag.DurationVar(&o.timeout, "timeout", 30*time.Second, "per-request deadline")
	flag.IntVar(&o.jobWorkers, "job-workers", 1, "mining job workers")
	flag.IntVar(&o.jobQueue, "job-queue", 16, "bounded mining-job queue; beyond it jobs get 429")
	flag.IntVar(&o.maxBatch, "max-batch", 0, "max tuples per repair/validate call (0 = 10000)")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", time.Minute, "graceful-shutdown drain budget")
	flag.StringVar(&o.checkpointDir, "checkpoint-dir", "", "directory for crash-safe rlminer job checkpoints; jobs interrupted by a crash resume on restart")
	flag.DurationVar(&o.checkpointEvery, "checkpoint-every", 0, "wall-clock period between job checkpoint writes (0 = 30s)")
	flag.BoolVar(&o.worker, "worker", false, "serve as an ermcluster worker (labels /healthz with the role; otherwise a normal daemon)")
	flag.BoolVar(&o.coordinator, "cluster-coordinator", false, "serve as an ermcluster coordinator fronting -workers (holds no data; most other flags are ignored)")
	flag.StringVar(&o.workers, "workers", "", "comma-separated worker base URLs for -cluster-coordinator")
	flag.DurationVar(&o.workerTimeout, "worker-timeout", 0, "coordinator per-worker dispatch attempt timeout (0 = 10s)")
	flag.IntVar(&o.retries, "retries", 0, "coordinator per-sub-batch retries before hedging to another worker (0 = 2, negative = none)")
	flag.Parse()

	err := func() error {
		if o.coordinator && o.worker {
			return fmt.Errorf("-cluster-coordinator and -worker are mutually exclusive")
		}
		if o.coordinator {
			return runCoordinator(o)
		}
		return run(o)
	}()
	if err != nil {
		fmt.Fprintln(os.Stderr, "erminerd:", err)
		os.Exit(1)
	}
}

func buildProblem(o options) (*erminer.Problem, error) {
	if o.inputCSV != "" {
		if o.masterCSV == "" || o.y == "" || o.ym == "" {
			return nil, fmt.Errorf("CSV mode needs -master-csv, -y and -ym")
		}
		var pairs map[string]string
		if o.match != "" {
			pairs = make(map[string]string)
			for _, kv := range strings.Split(o.match, ",") {
				in, ms, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("bad -match entry %q (want in=ms)", kv)
				}
				pairs[in] = ms
			}
		}
		return erminer.LoadCSVProblem(erminer.CSVSpec{
			InputPath:        o.inputCSV,
			MasterPath:       o.masterCSV,
			Y:                o.y,
			Ym:               o.ym,
			MatchPairs:       pairs,
			SupportThreshold: o.eta,
		})
	}
	ds, err := erminer.BuildDataset(o.dataset, erminer.DatasetSpec{
		InputSize:  o.input,
		MasterSize: o.master,
		Seed:       o.seed,
	})
	if err != nil {
		return nil, err
	}
	if o.noise > 0 {
		n := ds.InjectErrors(erminer.NoiseConfig{Rate: o.noise, Seed: o.seed + 1})
		log.Printf("injected %d cell errors at rate %.2f into the training corpus", n, o.noise)
	}
	return ds.Problem(o.eta), nil
}

func mineInitial(p *erminer.Problem, method string, steps int, seed int64) ([]erminer.MinedRule, error) {
	var m erminer.Miner
	switch strings.ToLower(method) {
	case "enuminer":
		m = erminer.NewEnuMiner(erminer.EnuMinerConfig{})
	case "enuminerh3":
		m = erminer.NewEnuMinerH3(erminer.EnuMinerConfig{})
	case "rlminer":
		m = erminer.NewRLMiner(erminer.RLMinerConfig{TrainSteps: steps, Seed: seed})
	case "ctane":
		m = erminer.NewCTANE(erminer.CTANEConfig{})
	default:
		return nil, fmt.Errorf("unknown -mine method %q", method)
	}
	start := time.Now()
	res, err := m.Mine(p)
	if err != nil {
		return nil, err
	}
	log.Printf("%s mined %d rules in %v (explored %d candidates)",
		m.Name(), len(res.Rules), time.Since(start).Round(time.Millisecond), res.Explored)
	return res.Rules, nil
}

// serveAndDrain owns the daemon lifecycle shared by both roles: listen
// (logging the bound address, so -addr :0 is scriptable), serve until a
// signal or listener error, then drain within the budget. shutdown is
// the role's own drain hook, called before the HTTP server's.
func serveAndDrain(o options, what string, handler http.Handler, shutdown func(done <-chan struct{}) error) error {
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() {
		log.Printf("%s listening on %s", what, ln.Addr())
		errc <- httpSrv.Serve(ln)
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("received %v; draining (budget %v)", sig, o.drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := shutdown(ctx.Done()); err != nil {
		log.Printf("drain: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	log.Printf("%s stopped", what)
	return nil
}

// runCoordinator is the -cluster-coordinator role: no problem, no
// rules, just the fan-out front door over the worker fleet.
func runCoordinator(o options) error {
	if o.workers == "" {
		return fmt.Errorf("-cluster-coordinator needs -workers")
	}
	var urls []string
	for _, u := range strings.Split(o.workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	coord, err := erminer.NewCoordinator(erminer.ClusterConfig{
		Workers:          urls,
		PerWorkerTimeout: o.workerTimeout,
		Retries:          o.retries,
		RequestTimeout:   o.timeout,
		MaxBatch:         o.maxBatch,
	})
	if err != nil {
		return err
	}
	log.Printf("coordinator fronting %d workers: %s", len(urls), strings.Join(urls, ", "))
	return serveAndDrain(o, "ermcluster coordinator", coord, coord.Shutdown)
}

func run(o options) error {
	p, err := buildProblem(o)
	if err != nil {
		return err
	}
	p.TopK = o.k
	p.Parallelism = o.parallel
	p.ScalarEval = o.scalarEval
	p.ShareIndexes()
	log.Printf("problem: input %d×%d, master %d×%d, |M|=%d, η_s=%d, workers=%d",
		p.Input.NumRows(), p.Input.Schema().Len(),
		p.Master.NumRows(), p.Master.Schema().Len(),
		p.Match.Size(), p.SupportThreshold, p.Workers())

	var rules []erminer.MinedRule
	switch {
	case o.rulesFile != "" && o.mine != "":
		return fmt.Errorf("-rules and -mine are mutually exclusive")
	case o.rulesFile != "":
		data, err := os.ReadFile(o.rulesFile)
		if err != nil {
			return err
		}
		rules, err = erminer.ImportRules(p, data)
		if err != nil {
			return err
		}
		log.Printf("activated %d rules from %s", len(rules), o.rulesFile)
	case o.mine != "":
		rules, err = mineInitial(p, o.mine, o.steps, o.seed)
		if err != nil {
			return err
		}
	default:
		log.Printf("starting with an empty rule set; POST /v1/jobs or PUT /v1/rules to activate one")
	}

	role := ""
	if o.worker {
		role = "worker"
	}
	srv, err := erminer.NewServer(p, rules, erminer.ServeConfig{
		RepairWorkers:   o.repairWorkers,
		QueueDepth:      o.queueDepth,
		RequestTimeout:  o.timeout,
		JobWorkers:      o.jobWorkers,
		JobQueue:        o.jobQueue,
		MaxBatch:        o.maxBatch,
		CheckpointDir:   o.checkpointDir,
		CheckpointEvery: o.checkpointEvery,
		Role:            role,
	})
	if err != nil {
		return err
	}
	if o.checkpointDir != "" {
		for _, j := range srv.Jobs() {
			if j.Resumed {
				log.Printf("recovered interrupted job %s (method %s) from %s", j.ID, j.Spec.Method, o.checkpointDir)
			}
		}
	}

	what := "erminerd"
	if o.worker {
		what = "erminerd worker"
	}
	return serveAndDrain(o, what, srv, srv.Shutdown)
}
