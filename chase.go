package erminer

import (
	"fmt"
	"io"

	"erminer/internal/core"
	"erminer/internal/repair"
	"erminer/internal/rlminer"
	"erminer/internal/schema"
)

// ChaseTarget is one dependent attribute with its rule set for
// multi-attribute chase repair.
type ChaseTarget = repair.Target

// ChaseResult reports a chase run.
type ChaseResult = repair.ChaseResult

// Chase repairs several attributes of the input relation iteratively
// (the certain-fix chase of Fan et al. that editing rules were designed
// for): a fix on one attribute can provide the join evidence another
// attribute's rules need, so the targets are re-applied round by round
// until a fixpoint. Each cell is fixed at most once, guaranteeing
// termination. The input relation is modified in place.
func Chase(input, master *Relation, targets []ChaseTarget, maxRounds int) ChaseResult {
	return repair.Chase(input, master, targets, maxRounds)
}

// Explanation justifies the fix proposed for one tuple: the covering
// rules, their candidates and the certainty-score arithmetic.
type Explanation = repair.Explanation

// Explain reconstructs why the rule set proposes its fix for input tuple
// row — the interpretability rule-based cleaning is chosen for. Render
// it with Explanation.Format.
func Explain(p *Problem, rules []MinedRule, row int) Explanation {
	rs := &ResultSet{Rules: rules}
	return repair.Explain(p.NewEvaluator(), rs.RuleList(), row)
}

// CertainRepairResult is the outcome of RepairCertain.
type CertainRepairResult = repair.CertainResult

// RepairCertain applies only certain fixes (f_c = 1, unique candidate) —
// the semantics editing rules were designed for in Fan et al. [18].
// Ambiguous evidence leaves cells untouched; disagreeing certain rules
// are reported as conflicts instead of resolved by vote. Use Repair for
// the paper's certainty-score aggregation (§V-B2).
func RepairCertain(p *Problem, rules []MinedRule) CertainRepairResult {
	rs := &ResultSet{Rules: rules}
	return repair.ApplyCertain(p.NewEvaluator(), rs.RuleList())
}

// MineAll discovers rules for every matched attribute of the problem
// (each in turn playing the dependent attribute Y) using miners produced
// by the factory, and returns one chase target per attribute that
// yielded rules. This is the multi-attribute front door: combine it with
// Chase to repair a whole relation rather than a single column.
func MineAll(p *Problem, newMiner func(y int) Miner) ([]ChaseTarget, error) {
	var targets []ChaseTarget
	for _, y := range p.Match.InputAttrs() {
		yms := p.Match.Of(y)
		if len(yms) == 0 {
			continue
		}
		sub := *p
		sub.Y = y
		sub.Ym = yms[0]
		res, err := newMiner(y).Mine(&sub)
		if err != nil {
			return nil, fmt.Errorf("erminer: mining attribute %s: %w",
				p.Input.Schema().Attr(y).Name, err)
		}
		if len(res.Rules) == 0 {
			continue
		}
		targets = append(targets, ChaseTarget{Y: y, Rules: res.RuleList()})
	}
	return targets, nil
}

// InferMatchConfig tunes the instance-based schema matcher.
type InferMatchConfig = schema.InferConfig

// InferMatch discovers the schema match M from value overlap between the
// two relations' columns (plus a same-name bonus). The paper assumes M
// is given; use this when it is not. Note that a match inferred this way
// is only usable for mining if the matched columns share dictionaries —
// relations built through BuildDataset or LoadCSVProblem satisfy that;
// for hand-built relations, assign matched attributes a common Domain.
func InferMatch(input, master *Relation, cfg InferMatchConfig) *Match {
	return schema.InferMatch(input, master, cfg)
}

// SavedModel is a persisted RLMiner value network plus the refinement
// dimensions it was trained on.
type SavedModel = rlminer.SavedModel

// SaveModel persists a trained RLMiner's value network for later
// fine-tuning (possibly in another process).
func SaveModel(m *RLMiner, w io.Writer) error { return m.SaveModel(w) }

// LoadModel reads a model persisted with SaveModel.
func LoadModel(r io.Reader) (*SavedModel, error) { return rlminer.LoadModel(r) }

// Checkpoint is a crash-safe snapshot of an in-flight RLMiner training
// run, written periodically when RLMinerConfig.CheckpointPath is set.
// Resuming from it with RLMiner.ResumeMine reproduces the uninterrupted
// run bit-for-bit.
type Checkpoint = rlminer.Checkpoint

// ReadCheckpointFile loads a training checkpoint from disk.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	return rlminer.ReadCheckpointFile(path)
}

var _ core.Miner = (*rlminer.Miner)(nil)
